// Package ires reimplements the Intelligent Resource Scheduler pipeline
// the paper builds MIDAS on (Section 2.4, Figure 1): an Interface that
// accepts a query and a user policy, a Modelling module that predicts
// multi-metric plan costs from execution history (pluggable: DREAM or
// the Best-ML baseline), a Multi-Objective Optimizer that produces a
// Pareto plan set, and the final BestInPareto selection (Algorithm 2).
// Executed plans feed their measured costs back into the history, the
// loop the whole estimation story depends on.
package ires

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ml"
	"repro/internal/moo"
	"repro/internal/regression"
	"repro/internal/stats"
	"repro/internal/tpch"
)

// ErrNoHistory is returned when estimation is requested before any
// executions were recorded for a query.
var ErrNoHistory = errors.New("ires: no history for query")

// CostModel is the Modelling module contract: predict the cost vector
// of a plan with feature vector x from the execution history h.
//
// Estimate must be safe for concurrent use: unless the scheduler is
// configured with Parallelism = 1, plan estimation fans out across
// goroutines. The models in this package are safe; a custom model with
// unsynchronized internal state needs its own locking (or a scheduler
// pinned to Parallelism 1).
type CostModel interface {
	Name() string
	Estimate(h *core.History, x []float64) ([]float64, error)
}

// SnapshotCostModel is implemented by Modelling modules that can score
// plans against an immutable history snapshot. The scheduler takes one
// snapshot per round and estimates every enumerated QEP against it, so
// observations appended concurrently (by other rounds or by Record)
// cannot split one Pareto comparison across history versions.
type SnapshotCostModel interface {
	CostModel
	EstimateSnapshot(s *core.Snapshot, x []float64) ([]float64, error)
}

// ---------------------------------------------------------------------------
// DREAM model

// DREAMModel adapts the core DREAM estimator to the Modelling contract.
type DREAMModel struct {
	Est *core.Estimator
}

// NewDREAMModel builds a DREAM Modelling module with the given config.
func NewDREAMModel(cfg core.Config) (*DREAMModel, error) {
	est, err := core.NewEstimator(cfg)
	if err != nil {
		return nil, err
	}
	return &DREAMModel{Est: est}, nil
}

// Name implements CostModel.
func (m *DREAMModel) Name() string { return "dream" }

// SetModelCacheSize implements ModelCacheSizer.
func (m *DREAMModel) SetModelCacheSize(n int) { m.Est.SetCacheSize(n) }

// Estimate implements CostModel. Predicted costs are clamped at zero:
// time and money are non-negative by definition, and a regression line
// extrapolated below zero carries no information beyond "very small".
func (m *DREAMModel) Estimate(h *core.History, x []float64) ([]float64, error) {
	return m.EstimateSnapshot(h.Snapshot(), x)
}

// EstimateSnapshot implements SnapshotCostModel.
func (m *DREAMModel) EstimateSnapshot(s *core.Snapshot, x []float64) ([]float64, error) {
	est, err := m.Est.EstimateSnapshot(s, x)
	if err != nil {
		return nil, err
	}
	vals := est.Values()
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return vals, nil
}

// ---------------------------------------------------------------------------
// BML model with observation windows

// BMLModel is the IReS baseline: the Best-ML learner trained on a fixed
// observation window of the most recent history. WindowMultiple
// expresses the window as a multiple of N = L+2 (the paper's BML_N,
// BML_2N, BML_3N); 0 means the whole history (the paper's plain BML).
type BMLModel struct {
	// Learner defaults to ml.BML with default candidates.
	Learner ml.Learner
	// WindowMultiple k selects the k·(L+2) most recent observations;
	// 0 selects everything.
	WindowMultiple int
	// Seed feeds the default learner.
	Seed int64
}

// Name implements CostModel.
func (m *BMLModel) Name() string {
	if m.WindowMultiple <= 0 {
		return "bml"
	}
	return fmt.Sprintf("bml_%dN", m.WindowMultiple)
}

// Estimate implements CostModel: train one model per metric on the
// window, then predict.
func (m *BMLModel) Estimate(h *core.History, x []float64) ([]float64, error) {
	if h.Len() == 0 {
		return nil, ErrNoHistory
	}
	learner := m.Learner
	if learner == nil {
		learner = ml.BML{Seed: m.Seed}
	}
	n := regression.MinObservations(h.Dim())
	window := h.Len()
	if m.WindowMultiple > 0 {
		window = m.WindowMultiple * n
		if window > h.Len() {
			window = h.Len()
		}
	}
	start := h.Len() - window
	metrics := h.Metrics()
	out := make([]float64, len(metrics))
	for mi := range metrics {
		samples := make([]regression.Sample, window)
		for i := 0; i < window; i++ {
			obs := h.At(start + i)
			samples[i] = regression.Sample{X: obs.X, C: obs.Costs[mi]}
		}
		p, err := learner.Train(samples)
		if err != nil {
			return nil, fmt.Errorf("ires: %s metric %q: %w", m.Name(), metrics[mi], err)
		}
		v, err := p.Predict(x)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			v = 0 // costs are non-negative by definition
		}
		out[mi] = v
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Scheduler

// SelectionStrategy picks how one plan is chosen from the Pareto set.
// WeightedSumSelection is the paper's Algorithm 2; the others implement
// its future-work item on "new strategies to choose QEPs in a Pareto
// Set".
type SelectionStrategy int

// Available Pareto-set selection strategies.
const (
	// WeightedSumSelection scores normalized costs with Policy.Weights
	// (Algorithm 2).
	WeightedSumSelection SelectionStrategy = iota
	// KneeSelection takes the knee of the Pareto front — no weights
	// needed.
	KneeSelection
	// LexicographicSelection minimizes objectives in Policy.LexOrder
	// priority order with Policy.LexTolerance tie bands.
	LexicographicSelection
)

// Policy is the user query policy of Algorithm 2: weighted-sum
// preferences S over the metrics and optional per-metric upper-bound
// constraints B (empty = unconstrained). Strategy switches to the
// alternative Pareto-selection rules.
type Policy struct {
	Weights     []float64
	Constraints []float64
	// Strategy defaults to WeightedSumSelection.
	Strategy SelectionStrategy
	// LexOrder and LexTolerance configure LexicographicSelection
	// (default order: metric 0 then 1, 5% tolerance).
	LexOrder     []int
	LexTolerance float64
}

// HistoryStore is the durable-history seam: a scheduler given one
// constructs its per-query histories through the store (recovering
// whatever the store already holds) instead of fresh in memory, and
// checkpoints them back through it. internal/histstore implements this
// with a per-query WAL + snapshot shard; the interface keeps ires free
// of any storage dependency.
type HistoryStore interface {
	// OpenHistory returns the named history, recovered from durable
	// state when present and wired so subsequent appends are persisted.
	// Repeated opens of one name return the same *core.History.
	OpenHistory(name string, dim int, metrics []string) (*core.History, error)
	// Checkpoint durably compacts the named history to the given
	// point-in-time snapshot.
	Checkpoint(name string, snap *core.Snapshot) error
}

// Scheduler is the MIDAS/IReS pipeline instance.
type Scheduler struct {
	Fed   *federation.Federation
	Exec  federation.Executor
	Model CostModel
	// NodeChoices is the cluster-size menu used when enumerating QEPs.
	NodeChoices []int
	// Parallelism bounds the plan-estimation worker pool (Submit,
	// OptimizeWSM). 0 means GOMAXPROCS; 1 forces the sequential path.
	// Plan decisions are identical for any value as long as the model
	// estimates deterministically — true for the default MostRecent
	// DREAM window and all models in this package. A UniformSample
	// DREAM window redraws randomly per call, so its results depend on
	// evaluation order; pin Parallelism to 1 to keep that ablation
	// reproducible.
	Parallelism int
	// Store, when non-nil, owns every query history: OpenHistory
	// recovers prior observations and persists new ones. Set it before
	// the first query is touched (histories already created in memory
	// are not migrated). Nil keeps the paper's in-memory behavior.
	Store HistoryStore
	// Prune selects which QEPs of the lattice PlanSweep estimates
	// (see PrunePolicy). Nil means FullSweep(): every plan, in lattice
	// order — the paper's behavior. The bundled policies are
	// deterministic at any Parallelism, so the byte-identical-decisions
	// guarantee holds for pruned sweeps too.
	Prune PrunePolicy

	histMu    sync.Mutex
	histories map[tpch.QueryID]*core.History
	rng       *stats.RNG

	// planCache holds each query's QEP lattice: the space depends only
	// on the query and NodeChoices, both fixed for the scheduler's
	// lifetime, so it is built once and shared (lattices are immutable).
	planMu    sync.RWMutex
	planCache map[tpch.QueryID]*federation.PlanLattice
	// featCache holds each plan's estimation feature vector. The
	// Executor contract makes Features deterministic for a fixed
	// executor (both executors derive it from fixed table sizes), so
	// one computation per distinct plan serves every later execution;
	// cached slices are immutable by the same convention.
	featMu    sync.RWMutex
	featCache map[federation.Plan][]float64

	// obs is the scheduler's observation-only instrumentation; nil
	// unless InstrumentScheduler was called (see metrics.go).
	obs *schedulerObs
}

// NewScheduler assembles a scheduler.
func NewScheduler(fed *federation.Federation, exec federation.Executor, model CostModel, nodeChoices []int, seed int64) (*Scheduler, error) {
	if fed == nil || exec == nil || model == nil {
		return nil, errors.New("ires: nil dependency")
	}
	if len(nodeChoices) == 0 {
		nodeChoices = []int{1, 2, 4, 8, 16}
	}
	// Fail at assembly, not mid-sweep: a malformed cluster-size menu
	// (duplicates, non-positive sizes) would otherwise surface as a
	// lattice error on the first request.
	if err := federation.ValidateNodeChoices(nodeChoices); err != nil {
		return nil, err
	}
	return &Scheduler{
		Fed:         fed,
		Exec:        exec,
		Model:       model,
		NodeChoices: nodeChoices,
		histories:   make(map[tpch.QueryID]*core.History),
		rng:         stats.NewRNG(seed),
	}, nil
}

// OpenHistory returns (creating — or, with a Store, recovering — if
// needed) the execution history of a query. With a Store attached this
// can fail on unreadable or mismatched durable state; callers that wire
// a store should open every query they serve at boot so recovery errors
// surface there and not mid-request.
func (s *Scheduler) OpenHistory(q tpch.QueryID) (*core.History, error) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	h, ok := s.histories[q]
	if ok {
		return h, nil
	}
	var err error
	if s.Store != nil {
		h, err = s.Store.OpenHistory(q.String(), federation.FeatureDim, federation.Metrics)
	} else {
		h, err = core.NewHistory(federation.FeatureDim, federation.Metrics...)
	}
	if err != nil {
		return nil, fmt.Errorf("ires: opening history for %v: %w", q, err)
	}
	s.histories[q] = h
	return h, nil
}

// History returns the execution history of a query, creating it if
// needed. Without a Store this cannot fail; with one, an unrecoverable
// shard panics — use OpenHistory (at boot) when a store is attached.
func (s *Scheduler) History(q tpch.QueryID) *core.History {
	h, err := s.OpenHistory(q)
	if err != nil {
		panic(err)
	}
	return h
}

// Checkpoint durably compacts every query history opened so far through
// the attached Store; without one it is a no-op. Each history is
// checkpointed at its own current snapshot, so it is safe to call while
// requests append concurrently.
func (s *Scheduler) Checkpoint() error {
	if s.Store == nil {
		return nil
	}
	s.histMu.Lock()
	type entry struct {
		q tpch.QueryID
		h *core.History
	}
	entries := make([]entry, 0, len(s.histories))
	for q, h := range s.histories {
		entries = append(entries, entry{q, h})
	}
	s.histMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].q < entries[j].q })
	// Every query is attempted even when one fails: a sick shard must
	// not keep healthy shards' WALs from compacting. The first error
	// is reported.
	var first error
	for _, e := range entries {
		if err := s.Store.Checkpoint(e.q.String(), e.h.Snapshot()); err != nil && first == nil {
			first = fmt.Errorf("ires: checkpointing %v: %w", e.q, err)
		}
	}
	return first
}

// DropHistories detaches every history opened so far from its durable
// sink and forgets it. The serving layer calls this when a tenant is
// handed off to another node: the local copies stop persisting (the new
// owner's appends are the live log now), and a later handoff back
// reopens fresh histories from whatever state is re-imported. The plan
// and feature caches are untouched — they depend only on the query
// space, not the histories.
func (s *Scheduler) DropHistories() {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	for q, h := range s.histories {
		h.SetSink(nil)
		delete(s.histories, q)
	}
}

// lattice returns q's QEP lattice through planCache.
func (s *Scheduler) lattice(q tpch.QueryID) (*federation.PlanLattice, error) {
	s.planMu.RLock()
	lat, ok := s.planCache[q]
	s.planMu.RUnlock()
	if ok {
		return lat, nil
	}
	lat, err := s.Fed.PlanLattice(q, s.NodeChoices)
	if err != nil {
		return nil, err
	}
	s.planMu.Lock()
	if s.planCache == nil {
		s.planCache = make(map[tpch.QueryID]*federation.PlanLattice)
	}
	s.planCache[q] = lat
	s.planMu.Unlock()
	return lat, nil
}

// plans returns q's enumerated QEP space — the lattice's batch form
// (shared slice, treat as read-only).
func (s *Scheduler) plans(q tpch.QueryID) ([]federation.Plan, error) {
	lat, err := s.lattice(q)
	if err != nil {
		return nil, err
	}
	return lat.Plans(), nil
}

// features returns p's estimation feature vector through featCache.
func (s *Scheduler) features(p federation.Plan) ([]float64, error) {
	s.featMu.RLock()
	x, ok := s.featCache[p]
	s.featMu.RUnlock()
	if ok {
		return x, nil
	}
	x, err := s.Exec.Features(p)
	if err != nil {
		return nil, err
	}
	s.featMu.Lock()
	if s.featCache == nil {
		s.featCache = make(map[federation.Plan][]float64)
	}
	s.featCache[p] = x
	s.featMu.Unlock()
	return x, nil
}

// Record appends one completed execution to the query's history.
func (s *Scheduler) Record(q tpch.QueryID, x []float64, costs []float64) error {
	h, err := s.OpenHistory(q)
	if err != nil {
		return err
	}
	return h.Append(core.Observation{X: x, Costs: costs})
}

// Bootstrap executes n randomly chosen plans of q to seed the history,
// the warm-up IReS performs before its models are usable.
func (s *Scheduler) Bootstrap(q tpch.QueryID, n int) error {
	// Surface durable-state errors before paying for any execution.
	if _, err := s.OpenHistory(q); err != nil {
		return err
	}
	plans, err := s.plans(q)
	if err != nil {
		return err
	}
	if len(plans) == 0 {
		return fmt.Errorf("ires: query %v has no feasible plans", q)
	}
	for i := 0; i < n; i++ {
		p := plans[s.rng.Intn(len(plans))]
		out, err := s.Exec.Execute(p)
		if err != nil {
			return err
		}
		x, err := s.features(p)
		if err != nil {
			return err
		}
		if err := s.Record(q, x, out.Costs()); err != nil {
			return err
		}
	}
	return nil
}

// Decision reports one scheduling round.
type Decision struct {
	Plan      federation.Plan
	Estimated []float64 // model-predicted cost vector of the chosen plan
	Outcome   *federation.Outcome
	// ParetoSize is the size of the Pareto plan set the choice was made
	// from; PlanSpace the size of the full QEP lattice; PlansEstimated
	// the number of QEPs the Modelling module actually scored (equal to
	// PlanSpace under the default FullSweep, smaller under a pruning
	// policy).
	ParetoSize, PlanSpace, PlansEstimated int
	// PrunePolicy names the prune policy that shaped the sweep
	// ("full", "greedy", "topk").
	PrunePolicy string
}

// Submit runs one full pipeline round for query q: enumerate QEPs,
// estimate each with the Modelling module, reduce to the Pareto set,
// select with BestInPareto under the policy, execute the winner and
// feed the measurement back into history.
func (s *Scheduler) Submit(q tpch.QueryID, pol Policy) (*Decision, error) {
	return s.SubmitContext(context.Background(), q, pol)
}

// SubmitContext is Submit with cancellation: the estimation fan-out
// (the expensive step over tens of thousands of equivalent QEPs)
// observes ctx and aborts early when it is cancelled.
func (s *Scheduler) SubmitContext(ctx context.Context, q tpch.QueryID, pol Policy) (*Decision, error) {
	sw, err := s.PlanSweep(ctx, q)
	if err != nil {
		return nil, err
	}
	return s.DecideFromSweep(sw, pol)
}

// Sweep is the policy-independent half of a scheduling round: the
// enumerated plan space, every plan's estimated cost vector, and the
// Pareto reduction. A Sweep is immutable once built, so any number of
// policies can be applied to it concurrently — this is the admission
// hook a serving layer batches on, since concurrent submissions of the
// same query can share one sweep and differ only in selection.
type Sweep struct {
	Query tpch.QueryID
	// Plans holds the QEPs the sweep actually estimated: the whole
	// lattice under FullSweep (the default), the pruned subset under a
	// pruning policy.
	Plans []federation.Plan
	// Costs is the model cost vector of every plan, in plan order.
	Costs [][]float64
	// FrontIdx indexes the Pareto-optimal plans within Plans.
	FrontIdx []int
	// FrontCosts and Normalized are the Pareto set's raw cost vectors
	// and their min-max rescaling (constraints check raw values, the
	// weighted sum compares normalized ones).
	FrontCosts, Normalized [][]float64
	// PlanSpace is the size of the full QEP lattice the sweep drew
	// from; PlansEstimated (= len(Plans)) counts the QEPs the prune
	// policy actually scored, so PlanSpace/PlansEstimated is the live
	// pruning ratio. Policy names the prune policy ("full" when none
	// was configured).
	PlanSpace, PlansEstimated int
	Policy                    string
}

// PlanSweep builds the QEP lattice of q, pulls plans through the
// configured PrunePolicy (default: all of them) into the estimation
// pool, scoring each against one history snapshot, and reduces to the
// Pareto set. The expensive fan-out observes ctx.
func (s *Scheduler) PlanSweep(ctx context.Context, q tpch.QueryID) (sw *Sweep, err error) {
	if s.obs != nil {
		began := time.Now()
		defer func() {
			planCount, planSpace := 0, 0
			if sw != nil {
				planCount, planSpace = len(sw.Plans), sw.PlanSpace
			}
			s.observeSweep(q.String(), began, planCount, planSpace, err)
		}()
	}
	h, err := s.OpenHistory(q)
	if err != nil {
		return nil, err
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("%w: %v (run Bootstrap first)", ErrNoHistory, q)
	}
	lat, err := s.lattice(q)
	if err != nil {
		return nil, err
	}
	pruner := s.Prune
	if pruner == nil {
		pruner = FullSweep()
	}
	plans, costs, err := pruner.sweep(ctx, &planSweeper{
		s:         s,
		src:       lat.Iterator(),
		estimateX: s.estimateFn(h),
	})
	if err != nil {
		return nil, err
	}
	frontIdx, err := moo.ParetoFront(costs)
	if err != nil {
		return nil, err
	}
	frontCosts := make([][]float64, len(frontIdx))
	for i, idx := range frontIdx {
		frontCosts[i] = costs[idx]
	}
	// Normalize so seconds and dollars are comparable before the
	// weighted sum (Algorithm 2's WeightSum over user policy).
	return &Sweep{
		Query:          q,
		Plans:          plans,
		Costs:          costs,
		FrontIdx:       frontIdx,
		FrontCosts:     frontCosts,
		Normalized:     moo.NormalizeCosts(frontCosts),
		PlanSpace:      lat.Size(),
		PlansEstimated: len(plans),
		Policy:         pruner.Name(),
	}, nil
}

// Select applies a policy to the sweep's Pareto set and returns the
// index (into sw.Plans) of the chosen plan. It does not execute
// anything and is safe to call concurrently.
func (sw *Sweep) Select(pol Policy) (int, error) {
	best, err := selectFromParetoSet(sw.FrontCosts, sw.Normalized, pol)
	if err != nil {
		return 0, err
	}
	return sw.FrontIdx[best], nil
}

// DecideFromSweep finishes a scheduling round on a previously computed
// sweep: select under the policy, execute the winner, record the
// measurement. Multiple goroutines may decide from one shared sweep.
func (s *Scheduler) DecideFromSweep(sw *Sweep, pol Policy) (*Decision, error) {
	idx, err := sw.Select(pol)
	if err != nil {
		return nil, err
	}
	chosen := sw.Plans[idx]
	out, err := s.Exec.Execute(chosen)
	if err != nil {
		return nil, err
	}
	x, err := s.features(chosen)
	if err != nil {
		return nil, err
	}
	if err := s.Record(sw.Query, x, out.Costs()); err != nil {
		return nil, err
	}
	// Sweeps built by hand (tests, embedders) may leave the bookkeeping
	// fields zero; fall back to the pre-pruning interpretation.
	planSpace, policy := sw.PlanSpace, sw.Policy
	if planSpace == 0 {
		planSpace = len(sw.Plans)
	}
	if policy == "" {
		policy = "full"
	}
	return &Decision{
		Plan:           chosen,
		Estimated:      sw.Costs[idx],
		Outcome:        out,
		ParetoSize:     len(sw.FrontIdx),
		PlanSpace:      planSpace,
		PlansEstimated: len(sw.Plans),
		PrunePolicy:    policy,
	}, nil
}

// bestWithConstraints applies Algorithm 2 with constraints evaluated on
// the raw costs but the weighted sum computed on normalized costs.
func bestWithConstraints(raw, normalized [][]float64, weights, constraints []float64) (int, error) {
	if len(constraints) > 0 {
		var feasible []int
		for i, c := range raw {
			ok := true
			for n, b := range constraints {
				if n < len(c) && c[n] > b {
					ok = false
					break
				}
			}
			if ok {
				feasible = append(feasible, i)
			}
		}
		if len(feasible) > 0 {
			sub := make([][]float64, len(feasible))
			for i, idx := range feasible {
				sub[i] = normalized[idx]
			}
			best, err := moo.ArgminWeightedSum(sub, weights)
			if err != nil {
				return 0, err
			}
			return feasible[best], nil
		}
	}
	return moo.ArgminWeightedSum(normalized, weights)
}

// Default policy fallbacks, hoisted to package level so an empty
// policy does not allocate them per selection.
var (
	defaultWeights  = []float64{1, 1}
	defaultLexOrder = []int{0, 1}
)

// selectFromParetoSet dispatches on the policy's selection strategy.
// raw carries the model's cost vectors, normalized their min-max
// rescaling across the set.
func selectFromParetoSet(raw, normalized [][]float64, pol Policy) (int, error) {
	switch pol.Strategy {
	case KneeSelection:
		return moo.KneePoint(raw)
	case LexicographicSelection:
		order := pol.LexOrder
		if len(order) == 0 {
			order = defaultLexOrder
		}
		tol := pol.LexTolerance
		if tol == 0 {
			tol = 0.05
		}
		return moo.Lexicographic(raw, order, tol)
	default:
		weights := pol.Weights
		if len(weights) == 0 {
			weights = defaultWeights
		}
		return bestWithConstraints(raw, normalized, weights, pol.Constraints)
	}
}
