package ires

import (
	"context"
	"testing"

	"repro/internal/federation"
	"repro/internal/histstore"
	"repro/internal/tpch"
)

// storeScheduler wires a scheduler whose histories live in a histstore
// root — the durable configuration midasd runs with -data-dir.
func storeScheduler(t *testing.T, dir string, seed int64) *Scheduler {
	t.Helper()
	fed, err := federation.DefaultTopology(seed)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, seed)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	store, err := histstore.Open(dir, histstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s, err := NewSchedulerWithConfig(fed, exec, dreamModel(t), SchedulerConfig{
		NodeChoices: []int{1, 2, 4, 8},
		Seed:        seed,
		Store:       store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSchedulerWarmStartFromStore is the kill-and-restart contract at
// the scheduler layer: a second scheduler built over the same store
// root recovers the exact history — same length, same observations —
// and its first plan sweep estimates byte-identically to the scheduler
// that recorded the executions.
func TestSchedulerWarmStartFromStore(t *testing.T) {
	dir := t.TempDir()
	a := storeScheduler(t, dir, 7)
	if err := a.Bootstrap(tpch.QueryQ12, 24); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(tpch.QueryQ12, Policy{Weights: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	ha := a.History(tpch.QueryQ12)
	swA, err := a.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh scheduler (same seed → same topology and
	// executor) over the same data directory.
	b := storeScheduler(t, dir, 7)
	hb, err := b.OpenHistory(tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Len() != ha.Len() {
		t.Fatalf("recovered history has %d observations, want %d", hb.Len(), ha.Len())
	}
	for i := 0; i < ha.Len(); i++ {
		oa, ob := ha.At(i), hb.At(i)
		for j := range oa.X {
			if oa.X[j] != ob.X[j] {
				t.Fatalf("observation %d feature %d differs", i, j)
			}
		}
		for j := range oa.Costs {
			if oa.Costs[j] != ob.Costs[j] {
				t.Fatalf("observation %d cost %d differs", i, j)
			}
		}
	}
	swB, err := b.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	if len(swB.Costs) != len(swA.Costs) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(swB.Costs), len(swA.Costs))
	}
	for i := range swA.Costs {
		for j := range swA.Costs[i] {
			if swA.Costs[i][j] != swB.Costs[i][j] {
				t.Fatalf("plan %d cost %d: restarted %v != original %v",
					i, j, swB.Costs[i][j], swA.Costs[i][j])
			}
		}
	}
	if len(swA.FrontIdx) != len(swB.FrontIdx) {
		t.Fatalf("pareto sizes differ: %d vs %d", len(swA.FrontIdx), len(swB.FrontIdx))
	}
}

// TestRecordPersistsWithoutCheckpoint: WAL-only durability — no
// checkpoint ever ran, yet a restart recovers every recorded execution.
func TestRecordPersistsWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	a := storeScheduler(t, dir, 3)
	x := make([]float64, federation.FeatureDim)
	for i := 0; i < 9; i++ {
		x[0] = float64(i)
		if err := a.Record(tpch.QueryQ13, x, []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	b := storeScheduler(t, dir, 3)
	hb, err := b.OpenHistory(tpch.QueryQ13)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Len() != 9 {
		t.Fatalf("recovered %d observations, want 9", hb.Len())
	}
}

// TestCheckpointWithoutStoreIsNoop keeps the paper-mode scheduler
// unchanged: no store, Checkpoint succeeds and does nothing.
func TestCheckpointWithoutStoreIsNoop(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 1)
	if err := s.Record(tpch.QueryQ12,
		make([]float64, federation.FeatureDim), []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// histstore.Store must satisfy the scheduler's store seam.
var _ HistoryStore = (*histstore.Store)(nil)
