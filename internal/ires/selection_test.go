package ires

import (
	"testing"

	"repro/internal/moo"
	"repro/internal/tpch"
)

// TestSubmitSelectionStrategies exercises the future-work Pareto
// selection rules end to end through the scheduler.
func TestSubmitSelectionStrategies(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 41)
	if err := s.Bootstrap(tpch.QueryQ12, 40); err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{
		{Strategy: WeightedSumSelection, Weights: []float64{1, 1}},
		{Strategy: KneeSelection},
		{Strategy: LexicographicSelection, LexOrder: []int{0, 1}, LexTolerance: 0.05},
		{Strategy: LexicographicSelection}, // defaults path
	} {
		dec, err := s.Submit(tpch.QueryQ12, pol)
		if err != nil {
			t.Fatalf("strategy %v: %v", pol.Strategy, err)
		}
		if dec.Outcome == nil || dec.Outcome.TimeS <= 0 {
			t.Fatalf("strategy %v: no outcome", pol.Strategy)
		}
	}
}

// TestGASelectStrategies exercises the strategies on a precomputed GA
// Pareto set and checks they make characteristically different picks.
func TestGASelectStrategies(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 42)
	if err := s.Bootstrap(tpch.QueryQ14, 40); err != nil {
		t.Fatal(err)
	}
	ga, err := s.OptimizeGA(tpch.QueryQ14, moo.NSGAIIConfig{PopSize: 40, Generations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ga.Plans) < 2 {
		t.Skip("front too small to differentiate strategies")
	}
	knee, err := ga.Select(Policy{Strategy: KneeSelection})
	if err != nil {
		t.Fatal(err)
	}
	timeFirst, err := ga.Select(Policy{Strategy: LexicographicSelection, LexOrder: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	moneyFirst, err := ga.Select(Policy{Strategy: LexicographicSelection, LexOrder: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Lexicographic time-first must pick a plan at least as fast (by
	// the model's own costs) as money-first.
	costOf := func(p interface{ String() string }) []float64 {
		for i := range ga.Plans {
			if ga.Plans[i].String() == p.String() {
				return ga.Costs[i]
			}
		}
		t.Fatalf("plan %v not in front", p)
		return nil
	}
	tf, mf := costOf(timeFirst), costOf(moneyFirst)
	if tf[0] > mf[0]*1.05 {
		t.Errorf("time-first pick (%v s) slower than money-first (%v s)", tf[0], mf[0])
	}
	if mf[1] > tf[1]*1.05 {
		t.Errorf("money-first pick ($%v) dearer than time-first ($%v)", mf[1], tf[1])
	}
	_ = knee // knee needs no policy input; its validity is selecting at all
}
