package ires

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/moo"
	"repro/internal/tpch"
)

// testScheduler wires a scheduler over the scaled executor at a small
// simulated size so tests run in milliseconds.
func testScheduler(t *testing.T, model CostModel, seed int64) *Scheduler {
	t.Helper()
	fed, err := federation.DefaultTopology(seed)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, seed)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(fed, exec, model, []int{1, 2, 4, 8}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func dreamModel(t *testing.T) *DREAMModel {
	t.Helper()
	m, err := NewDREAMModel(core.Config{RequiredR2: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(nil, nil, nil, nil, 0); err == nil {
		t.Error("nil dependencies accepted")
	}
}

func TestNewDREAMModelValidation(t *testing.T) {
	if _, err := NewDREAMModel(core.Config{RequiredR2: 2}); err == nil {
		t.Error("invalid DREAM config accepted")
	}
}

func TestSubmitWithoutHistory(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 1)
	if _, err := s.Submit(tpch.QueryQ12, Policy{}); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("got %v, want ErrNoHistory", err)
	}
}

func TestBootstrapAndSubmitDREAM(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 2)
	if err := s.Bootstrap(tpch.QueryQ12, 30); err != nil {
		t.Fatal(err)
	}
	if s.History(tpch.QueryQ12).Len() != 30 {
		t.Fatalf("history = %d, want 30", s.History(tpch.QueryQ12).Len())
	}
	dec, err := s.Submit(tpch.QueryQ12, Policy{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome == nil || dec.Outcome.TimeS <= 0 {
		t.Fatal("no outcome")
	}
	if dec.PlanSpace == 0 || dec.ParetoSize == 0 || dec.ParetoSize > dec.PlanSpace {
		t.Errorf("plan space %d / pareto %d inconsistent", dec.PlanSpace, dec.ParetoSize)
	}
	if len(dec.Estimated) != len(federation.Metrics) {
		t.Errorf("estimate dim = %d", len(dec.Estimated))
	}
	// The execution must have been recorded.
	if s.History(tpch.QueryQ12).Len() != 31 {
		t.Errorf("history = %d after submit, want 31", s.History(tpch.QueryQ12).Len())
	}
}

func TestSubmitRespectsTimeWeight(t *testing.T) {
	// A strongly time-weighted policy should pick a plan at least as
	// fast (by estimate) as a strongly money-weighted policy's pick.
	s := testScheduler(t, dreamModel(t), 3)
	if err := s.Bootstrap(tpch.QueryQ14, 40); err != nil {
		t.Fatal(err)
	}
	fast, err := s.Submit(tpch.QueryQ14, Policy{Weights: []float64{1, 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := s.Submit(tpch.QueryQ14, Policy{Weights: []float64{0.001, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Estimated[0] > cheap.Estimated[0]*1.5 {
		t.Errorf("time-weighted pick (%v s) much slower than money-weighted pick (%v s)",
			fast.Estimated[0], cheap.Estimated[0])
	}
}

func TestSubmitWithConstraints(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 4)
	if err := s.Bootstrap(tpch.QueryQ12, 40); err != nil {
		t.Fatal(err)
	}
	// Unconstrained pick first, then constrain time below that pick's
	// estimate to force a different (or equal) feasible region.
	free, err := s.Submit(tpch.QueryQ12, Policy{Weights: []float64{0.001, 1}})
	if err != nil {
		t.Fatal(err)
	}
	budget := free.Estimated[0] * 0.9
	constrained, err := s.Submit(tpch.QueryQ12, Policy{
		Weights:     []float64{0.001, 1},
		Constraints: []float64{budget},
	})
	if err != nil {
		t.Fatal(err)
	}
	// If any plan fits the budget the chosen one must.
	if constrained.Estimated[0] > budget {
		// Acceptable only if nothing was feasible; verify by checking
		// the unconstrained fastest estimate.
		fastest, err := s.Submit(tpch.QueryQ12, Policy{Weights: []float64{1, 0.0001}})
		if err != nil {
			t.Fatal(err)
		}
		if fastest.Estimated[0] <= budget {
			t.Errorf("constraint %v ignored: picked %v while %v was feasible",
				budget, constrained.Estimated[0], fastest.Estimated[0])
		}
	}
}

func TestBMLModelWindows(t *testing.T) {
	h, err := core.NewHistory(2, "time", "money")
	if err != nil {
		t.Fatal(err)
	}
	// 40 observations of a clean linear model.
	for i := 0; i < 40; i++ {
		x1, x2 := float64(i%7+1), float64(i%5+1)
		if err := h.Append(core.Observation{
			X:     []float64{x1, x2},
			Costs: []float64{1 + 2*x1 + 3*x2, 0.1 + 0.2*x1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		mult int
		name string
	}{
		{1, "bml_1N"}, {2, "bml_2N"}, {3, "bml_3N"}, {0, "bml"},
	} {
		m := &BMLModel{WindowMultiple: tc.mult, Seed: 1}
		if m.Name() != tc.name {
			t.Errorf("Name = %q, want %q", m.Name(), tc.name)
		}
		got, err := m.Estimate(h, []float64{3, 3})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantTime := 1.0 + 2*3 + 3*3
		if math.Abs(got[0]-wantTime) > 1.5 {
			t.Errorf("%s time estimate = %v, want ≈%v", tc.name, got[0], wantTime)
		}
	}
}

func TestBMLModelEmptyHistory(t *testing.T) {
	h, err := core.NewHistory(2, "time")
	if err != nil {
		t.Fatal(err)
	}
	m := &BMLModel{}
	if _, err := m.Estimate(h, []float64{1, 2}); !errors.Is(err, ErrNoHistory) {
		t.Errorf("got %v, want ErrNoHistory", err)
	}
}

func TestDREAMModelName(t *testing.T) {
	if dreamModel(t).Name() != "dream" {
		t.Error("DREAM model name wrong")
	}
}

func TestOptimizeGAAndSelect(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 5)
	if err := s.Bootstrap(tpch.QueryQ14, 40); err != nil {
		t.Fatal(err)
	}
	res, err := s.OptimizeGA(tpch.QueryQ14, moo.NSGAIIConfig{PopSize: 30, Generations: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) == 0 {
		t.Fatal("GA produced no Pareto plans")
	}
	if res.ModelEvaluations == 0 {
		t.Error("no model evaluations counted")
	}
	// The decoded plans must be valid members of the plan space.
	for _, p := range res.Plans {
		if p.NodesLeft < 1 || p.NodesRight < 1 {
			t.Errorf("invalid plan %v in front", p)
		}
	}
	// Policy selection works and differs (or not) by weights without
	// re-running the GA.
	fast, err := res.Select(Policy{Weights: []float64{1, 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := res.Select(Policy{Weights: []float64{0.001, 1}})
	if err != nil {
		t.Fatal(err)
	}
	_ = fast
	_ = cheap
	if _, err := (&GAResult{}).Select(Policy{}); !errors.Is(err, moo.ErrNoPlans) {
		t.Errorf("empty GA result select: got %v, want ErrNoPlans", err)
	}
}

func TestOptimizeWSM(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 6)
	if err := s.Bootstrap(tpch.QueryQ12, 40); err != nil {
		t.Fatal(err)
	}
	res, err := s.OptimizeWSM(tpch.QueryQ12, Policy{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelEvaluations == 0 {
		t.Error("WSM did not count evaluations")
	}
	if res.Plan.NodesLeft < 1 {
		t.Errorf("invalid WSM plan %v", res.Plan)
	}
}

func TestGAAmortizesAcrossPolicyChanges(t *testing.T) {
	// The paper's Figure 3 argument: with the GA path, K policy changes
	// need one optimization; with WSM, K full re-optimizations.
	s := testScheduler(t, dreamModel(t), 7)
	if err := s.Bootstrap(tpch.QueryQ12, 40); err != nil {
		t.Fatal(err)
	}
	ga, err := s.OptimizeGA(tpch.QueryQ12, moo.NSGAIIConfig{PopSize: 30, Generations: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const K = 5
	gaEvals := ga.ModelEvaluations // paid once
	wsmEvals := 0
	for k := 0; k < K; k++ {
		w := float64(k+1) / K
		res, err := s.OptimizeWSM(tpch.QueryQ12, Policy{Weights: []float64{w, 1 - w + 0.01}})
		if err != nil {
			t.Fatal(err)
		}
		wsmEvals += res.ModelEvaluations
		if _, err := ga.Select(Policy{Weights: []float64{w, 1 - w + 0.01}}); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("GA evals (once): %d; WSM evals (%d policies): %d", gaEvals, K, wsmEvals)
	if wsmEvals <= 0 || gaEvals <= 0 {
		t.Fatal("evaluation counting broken")
	}
}

func TestOptimizersrequireHistory(t *testing.T) {
	s := testScheduler(t, dreamModel(t), 8)
	if _, err := s.OptimizeGA(tpch.QueryQ12, moo.NSGAIIConfig{PopSize: 10, Generations: 2}); !errors.Is(err, ErrNoHistory) {
		t.Errorf("GA without history: got %v, want ErrNoHistory", err)
	}
	if _, err := s.OptimizeWSM(tpch.QueryQ12, Policy{}); !errors.Is(err, ErrNoHistory) {
		t.Errorf("WSM without history: got %v, want ErrNoHistory", err)
	}
}
