package ires

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Scheduler instrumentation. Everything here is observation-only: the
// instruments record what the pipeline did (sweep wall time, plans
// scored, Algorithm 1's window behavior) after the fact and are never
// read back by any decision path, so a metered scheduler produces
// byte-identical decisions to an unmetered one — the determinism tests
// in parallel_test.go run against an instrumented scheduler to pin
// that down.

// EstimatorStatser is implemented by Modelling modules that expose
// their core estimator's instrumentation (the DREAM variants do); the
// scheduler uses it to publish window-size and model-cache metrics at
// scrape time without touching the estimate path.
type EstimatorStatser interface {
	EstimatorStats() core.EstimatorStats
}

// EstimatorStats implements EstimatorStatser.
func (m *DREAMModel) EstimatorStats() core.EstimatorStats { return m.Est.Stats() }

// EstimatorStats implements EstimatorStatser.
func (m *CompositeDREAMModel) EstimatorStats() core.EstimatorStats { return m.Est.Stats() }

// schedulerObs holds the scheduler's bound instruments; nil on an
// uninstrumented scheduler.
type schedulerObs struct {
	federation     string
	sweepSeconds   *metrics.HistogramVec // {federation, query}
	plansEstimated *metrics.CounterVec   // {federation, query}
	planSpace      *metrics.GaugeVec     // {federation, query}
	sweepErrors    *metrics.CounterVec   // {federation, query}
}

// InstrumentScheduler registers the scheduler's metrics on reg, with
// every series labeled by the given federation name (the serving
// layer's tenant name; any non-empty string works for embedders).
// DREAM-backed models additionally publish window-search, fitted
// window-size and model-cache series read from the estimator at scrape
// time. Call at assembly time, before the scheduler serves requests,
// and at most once per (registry, federation) pair.
func (s *Scheduler) InstrumentScheduler(reg *metrics.Registry, federation string) {
	if reg == nil {
		return
	}
	if federation == "" {
		federation = "default"
	}
	s.obs = &schedulerObs{
		federation: federation,
		sweepSeconds: reg.HistogramVec("midas_sweep_duration_seconds",
			"Wall time of one plan sweep (enumerate, estimate every QEP, Pareto-reduce).",
			nil, "federation", "query"),
		plansEstimated: reg.CounterVec("midas_plans_estimated_total",
			"Query execution plans scored by the Modelling module (after pruning).",
			"federation", "query"),
		planSpace: reg.GaugeVec("midas_plan_space",
			"Size of the full QEP lattice of the most recent sweep; compare with the per-sweep increment of midas_plans_estimated_total to read the live pruning ratio.",
			"federation", "query"),
		sweepErrors: reg.CounterVec("midas_sweep_errors_total",
			"Plan sweeps that failed (cancelled, timed out, or estimation error).",
			"federation", "query"),
	}
	if es, ok := s.Model.(EstimatorStatser); ok {
		reg.CounterFunc("midas_window_searches_total",
			"Completed Algorithm 1 window searches (one per estimated history version when the model cache is on).",
			func() float64 { return float64(es.EstimatorStats().WindowSearches) },
			"federation", federation)
		reg.CounterFunc("midas_window_refits_total",
			"Cumulative MLR fits performed by Algorithm 1's window growth.",
			func() float64 { return float64(es.EstimatorStats().Refits) },
			"federation", federation)
		reg.CounterFunc("midas_window_refits_avoided_total",
			"Full-window batch refits the legacy Algorithm 1 loop would have run that the incremental shared-Gram search skipped.",
			func() float64 { return float64(es.EstimatorStats().RefitsAvoided) },
			"federation", federation)
		reg.CounterFunc("midas_window_incremental_steps_total",
			"Rank-1 observation updates folded into shared-Gram fitters by the incremental window search.",
			func() float64 { return float64(es.EstimatorStats().IncrementalSteps) },
			"federation", federation)
		reg.GaugeFunc("midas_window_size",
			"Final window size m of the most recent Algorithm 1 search; growth toward Mmax signals execution-condition drift.",
			func() float64 { return float64(es.EstimatorStats().LastWindowSize) },
			"federation", federation)
		reg.GaugeFunc("midas_window_converged",
			"1 when the most recent window search reached the required R2 on every metric, else 0.",
			func() float64 {
				if es.EstimatorStats().LastConverged {
					return 1
				}
				return 0
			},
			"federation", federation)
		reg.CounterFunc("midas_model_cache_hits_total",
			"Window fits served from the per-(history, version) model cache.",
			func() float64 { return float64(es.EstimatorStats().CacheHits) },
			"federation", federation)
		reg.CounterFunc("midas_model_cache_misses_total",
			"Window fits that required a fresh Algorithm 1 search.",
			func() float64 { return float64(es.EstimatorStats().CacheMisses) },
			"federation", federation)
	}
}

// observeSweep records one finished (or failed) sweep. planCount is
// the number of QEPs estimated (after pruning), planSpace the full
// lattice size.
func (s *Scheduler) observeSweep(query string, began time.Time, planCount, planSpace int, err error) {
	o := s.obs
	if o == nil {
		return
	}
	if err != nil {
		o.sweepErrors.With(o.federation, query).Inc()
		return
	}
	o.sweepSeconds.With(o.federation, query).Observe(time.Since(began).Seconds())
	o.plansEstimated.With(o.federation, query).Add(float64(planCount))
	o.planSpace.With(o.federation, query).Set(float64(planSpace))
}
