package ires

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/moo"
	"repro/internal/tpch"
)

// buildStack assembles one complete scheduler stack (federation,
// calibration, scaled executor, DREAM model) with the given estimation
// knobs. Two stacks built with the same seed are bit-identical.
func buildStack(t *testing.T, seed int64, cfg SchedulerConfig) *Scheduler {
	t.Helper()
	fed, err := federation.DefaultTopology(seed)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, seed)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchedulerWithConfig(fed, exec, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderDecision serializes every decision field (dereferencing the
// outcome pointer) for byte-level comparison.
func renderDecision(d *Decision) string {
	return fmt.Sprintf("plan=%+v est=%v outcome=%+v pareto=%d space=%d",
		d.Plan, d.Estimated, *d.Outcome, d.ParetoSize, d.PlanSpace)
}

// TestParallelSubmitMatchesSequential is the determinism contract of
// the parallel pipeline: for the same seed, a scheduler fanning
// estimation over many workers (with the model cache on) must make
// byte-identical decisions to the sequential, cache-less path.
func TestParallelSubmitMatchesSequential(t *testing.T) {
	choices := []int{1, 2, 3, 4, 6, 8, 12, 16}
	seq := buildStack(t, 42, SchedulerConfig{NodeChoices: choices, Seed: 42, Parallelism: 1, CacheSize: -1})
	par := buildStack(t, 42, SchedulerConfig{NodeChoices: choices, Seed: 42, Parallelism: 8})

	if err := seq.Bootstrap(tpch.QueryQ12, 25); err != nil {
		t.Fatal(err)
	}
	if err := par.Bootstrap(tpch.QueryQ12, 25); err != nil {
		t.Fatal(err)
	}

	pol := Policy{Weights: []float64{1, 1}}
	for round := 0; round < 5; round++ {
		a, err := seq.Submit(tpch.QueryQ12, pol)
		if err != nil {
			t.Fatalf("round %d sequential: %v", round, err)
		}
		b, err := par.Submit(tpch.QueryQ12, pol)
		if err != nil {
			t.Fatalf("round %d parallel: %v", round, err)
		}
		got, want := renderDecision(b), renderDecision(a)
		if got != want {
			t.Fatalf("round %d decisions diverge:\nsequential: %s\nparallel:   %s", round, want, got)
		}
	}
}

// TestParallelOptimizeWSMMatchesSequential covers the weighted-sum path
// of Figure 3 under the same contract.
func TestParallelOptimizeWSMMatchesSequential(t *testing.T) {
	choices := []int{1, 2, 3, 4, 6, 8, 12, 16}
	seq := buildStack(t, 7, SchedulerConfig{NodeChoices: choices, Seed: 7, Parallelism: 1, CacheSize: -1})
	par := buildStack(t, 7, SchedulerConfig{NodeChoices: choices, Seed: 7, Parallelism: 8})
	if err := seq.Bootstrap(tpch.QueryQ13, 25); err != nil {
		t.Fatal(err)
	}
	if err := par.Bootstrap(tpch.QueryQ13, 25); err != nil {
		t.Fatal(err)
	}
	pol := Policy{Weights: []float64{2, 1}}
	a, err := seq.OptimizeWSM(tpch.QueryQ13, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.OptimizeWSM(tpch.QueryQ13, pol)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan != b.Plan {
		t.Fatalf("WSM plans diverge: sequential %+v, parallel %+v", a.Plan, b.Plan)
	}
	if a.ModelEvaluations != b.ModelEvaluations {
		t.Fatalf("evaluation counts diverge: %d vs %d", a.ModelEvaluations, b.ModelEvaluations)
	}
}

// TestParallelOptimizeGAMatchesSequential: NSGA-II over the plan
// problem with a concurrent fitness pool returns the same Pareto set as
// the sequential evaluation, because all random draws stay on the main
// loop.
func TestParallelOptimizeGAMatchesSequential(t *testing.T) {
	choices := []int{1, 2, 4, 8, 16}
	seq := buildStack(t, 11, SchedulerConfig{NodeChoices: choices, Seed: 11, Parallelism: 1, CacheSize: -1})
	par := buildStack(t, 11, SchedulerConfig{NodeChoices: choices, Seed: 11})
	if err := seq.Bootstrap(tpch.QueryQ12, 25); err != nil {
		t.Fatal(err)
	}
	if err := par.Bootstrap(tpch.QueryQ12, 25); err != nil {
		t.Fatal(err)
	}
	cfg := moo.NSGAIIConfig{PopSize: 24, Generations: 10, Seed: 3}
	a, err := seq.OptimizeGA(tpch.QueryQ12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.OptimizeGA(tpch.QueryQ12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, want := fmt.Sprintf("%+v %+v", b.Plans, b.Costs), fmt.Sprintf("%+v %+v", a.Plans, a.Costs)
	if got != want {
		t.Fatalf("GA results diverge:\nsequential: %s\nparallel:   %s", want, got)
	}
	if a.ModelEvaluations != b.ModelEvaluations {
		t.Fatalf("distinct-plan evaluation counts diverge: %d vs %d", a.ModelEvaluations, b.ModelEvaluations)
	}
}

// TestSubmitContextCancelled: a cancelled context aborts the estimation
// fan-out instead of running the full plan sweep.
func TestSubmitContextCancelled(t *testing.T) {
	s := buildStack(t, 5, SchedulerConfig{Parallelism: 4})
	if err := s.Bootstrap(tpch.QueryQ12, 20); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.SubmitContext(ctx, tpch.QueryQ12, Policy{Weights: []float64{1, 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSchedulerWithConfigDefaults: the zero config yields a working
// scheduler with default node choices.
func TestSchedulerWithConfigDefaults(t *testing.T) {
	s := buildStack(t, 3, SchedulerConfig{})
	if len(s.NodeChoices) == 0 {
		t.Fatal("default node choices not applied")
	}
	if err := s.Bootstrap(tpch.QueryQ14, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(tpch.QueryQ14, Policy{Weights: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
}
