package ires

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tpch"
)

// TestInstrumentedDecisionsIdentical is the observation-only contract
// of the scheduler's metrics: a fully instrumented scheduler must make
// byte-identical decisions to a bare one, round for round, while its
// instruments actually fill in.
func TestInstrumentedDecisionsIdentical(t *testing.T) {
	choices := []int{1, 2, 4}
	reg := metrics.NewRegistry()
	bare := buildStack(t, 42, SchedulerConfig{NodeChoices: choices, Seed: 42})
	metered := buildStack(t, 42, SchedulerConfig{
		NodeChoices: choices, Seed: 42,
		Metrics: reg, MetricsFederation: "t",
	})

	if err := bare.Bootstrap(tpch.QueryQ12, 25); err != nil {
		t.Fatal(err)
	}
	if err := metered.Bootstrap(tpch.QueryQ12, 25); err != nil {
		t.Fatal(err)
	}
	pol := Policy{Weights: []float64{1, 1}}
	for round := 0; round < 5; round++ {
		a, err := bare.Submit(tpch.QueryQ12, pol)
		if err != nil {
			t.Fatal(err)
		}
		b, err := metered.Submit(tpch.QueryQ12, pol)
		if err != nil {
			t.Fatal(err)
		}
		if renderDecision(a) != renderDecision(b) {
			t.Fatalf("round %d: instrumented decision diverged:\nbare:    %s\nmetered: %s",
				round, renderDecision(a), renderDecision(b))
		}
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if got := sc.Values[`midas_sweep_duration_seconds_count{federation="t",query="Q12"}`]; got != 5 {
		t.Errorf("sweep count = %v, want 5", got)
	}
	if got := sc.Values[`midas_plans_estimated_total{federation="t",query="Q12"}`]; got <= 0 {
		t.Errorf("plans estimated = %v, want > 0", got)
	}
	if got := sc.Values[`midas_window_size{federation="t"}`]; got <= 0 {
		t.Errorf("window size gauge = %v, want > 0", got)
	}
	hits := sc.Values[`midas_model_cache_hits_total{federation="t"}`]
	misses := sc.Values[`midas_model_cache_misses_total{federation="t"}`]
	if misses <= 0 || hits <= 0 {
		t.Errorf("model cache series empty: hits %v misses %v", hits, misses)
	}
	if got := sc.Values[`midas_window_incremental_steps_total{federation="t"}`]; got <= 0 {
		t.Errorf("incremental steps = %v, want > 0 (every window search folds observations)", got)
	}
	if _, ok := sc.Values[`midas_window_refits_avoided_total{federation="t"}`]; !ok {
		t.Error("refits-avoided series missing from the scrape")
	}
}

// TestInstrumentSchedulerNilRegistry: a nil registry is a no-op, not a
// panic.
func TestInstrumentSchedulerNilRegistry(t *testing.T) {
	s := buildStack(t, 7, SchedulerConfig{NodeChoices: []int{1, 2}, Seed: 7})
	s.InstrumentScheduler(nil, "x")
	if s.obs != nil {
		t.Fatal("nil registry should leave the scheduler uninstrumented")
	}
}
