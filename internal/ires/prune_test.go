package ires

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/tpch"
)

// buildWideStack is buildStack on a WideTopology federation: both sites
// accept clusters up to maxNodes VMs and the dense NodeRange menu is
// used, so the QEP lattice has 2×maxNodes² plans — the knob the pruning
// tests and ablation turn to reach the paper's Example 3.1 regime.
func buildWideStack(t *testing.T, seed int64, maxNodes int, cfg SchedulerConfig) *Scheduler {
	t.Helper()
	fed, err := federation.WideTopology(seed, maxNodes)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, seed)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeChoices = federation.NodeRange(maxNodes)
	s, err := NewSchedulerWithConfig(fed, exec, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderSweep serializes the full estimated set — plans, cost vectors,
// Pareto front, bookkeeping — for byte-level comparison.
func renderSweep(sw *Sweep) string {
	out := fmt.Sprintf("q=%v space=%d est=%d policy=%s front=%v\n",
		sw.Query, sw.PlanSpace, sw.PlansEstimated, sw.Policy, sw.FrontIdx)
	for i, p := range sw.Plans {
		out += fmt.Sprintf("%v %v\n", p, sw.Costs[i])
	}
	return out
}

func TestParsePrunePolicy(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int
		want   string
	}{
		{"", 0, "full"}, {"full", 0, "full"}, {"FULL", 0, "full"},
		{"greedy", 0, "greedy"}, {"greedy", 512, "greedy"},
		{"topk", 100, "topk"},
	} {
		p, err := ParsePrunePolicy(tc.name, tc.budget)
		if err != nil {
			t.Fatalf("ParsePrunePolicy(%q, %d): %v", tc.name, tc.budget, err)
		}
		if p.Name() != tc.want {
			t.Fatalf("ParsePrunePolicy(%q).Name() = %q, want %q", tc.name, p.Name(), tc.want)
		}
	}
	for _, tc := range []struct {
		name   string
		budget int
	}{
		{"nope", 0},    // unknown policy
		{"greedy", -1}, // negative budget
		{"full", 100},  // budget is meaningless for full
	} {
		if _, err := ParsePrunePolicy(tc.name, tc.budget); err == nil {
			t.Fatalf("ParsePrunePolicy(%q, %d) accepted", tc.name, tc.budget)
		}
	}
}

// TestFullSweepExplicitMatchesDefault pins the API contract that a nil
// Prune and an explicit FullSweep() are the same policy: byte-identical
// sweeps.
func TestFullSweepExplicitMatchesDefault(t *testing.T) {
	def := buildStack(t, 7, SchedulerConfig{Seed: 7})
	full := buildStack(t, 7, SchedulerConfig{Seed: 7, Prune: FullSweep()})
	for _, s := range []*Scheduler{def, full} {
		if err := s.Bootstrap(tpch.QueryQ12, 25); err != nil {
			t.Fatal(err)
		}
	}
	a, err := def.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	if renderSweep(a) != renderSweep(b) {
		t.Fatalf("nil Prune and FullSweep() diverge:\n%s\nvs\n%s", renderSweep(a), renderSweep(b))
	}
	if a.PlanSpace != len(a.Plans) || a.PlansEstimated != len(a.Plans) || a.Policy != "full" {
		t.Fatalf("full-sweep bookkeeping: space=%d est=%d policy=%q plans=%d",
			a.PlanSpace, a.PlansEstimated, a.Policy, len(a.Plans))
	}
}

// TestPrunedSweepDeterministicAcrossParallelism extends the PR 1
// byte-identical guarantee to pruned sweeps: same seed + policy must
// produce the same estimated set, costs and front at any Parallelism.
func TestPrunedSweepDeterministicAcrossParallelism(t *testing.T) {
	const maxNodes = 24 // 2×24×24 = 1,152 plans
	for _, tc := range []struct {
		name  string
		prune func() PrunePolicy
	}{
		{"greedy", func() PrunePolicy { return GreedyPrune(160) }},
		{"topk", func() PrunePolicy { return TopK(160, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := buildWideStack(t, 42, maxNodes, SchedulerConfig{Seed: 42, Parallelism: 1, CacheSize: -1, Prune: tc.prune()})
			par := buildWideStack(t, 42, maxNodes, SchedulerConfig{Seed: 42, Parallelism: 8, Prune: tc.prune()})
			for _, s := range []*Scheduler{seq, par} {
				if err := s.Bootstrap(tpch.QueryQ12, 25); err != nil {
					t.Fatal(err)
				}
			}
			a, err := seq.PlanSweep(context.Background(), tpch.QueryQ12)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.PlanSweep(context.Background(), tpch.QueryQ12)
			if err != nil {
				t.Fatal(err)
			}
			got, want := renderSweep(b), renderSweep(a)
			if got != want {
				t.Fatalf("%s sweep depends on Parallelism:\nP=1:\n%s\nP=8:\n%s", tc.name, want, got)
			}
			if a.PlansEstimated >= a.PlanSpace {
				t.Fatalf("%s did not prune: estimated %d of %d", tc.name, a.PlansEstimated, a.PlanSpace)
			}
		})
	}
}

// TestGreedyPruneDecisionWithinTolerance is the property test behind
// the ablation: across seeds and federation sizes, the plan GreedyPrune
// selects must have an estimated cost vector within
// experiments' 15% tolerance of the full sweep's choice, on every
// metric and for more than one policy weighting. (Both sweeps run
// against identically bootstrapped histories; Select does not execute,
// so the comparison is exact.)
func TestGreedyPruneDecisionWithinTolerance(t *testing.T) {
	const tolerance = 0.15
	sizes := []int{16, 24, 32} // 512, 1,152, 2,048 plans
	seeds := []int64{1, 2, 3}
	policies := []Policy{
		{Weights: []float64{1, 1}},
		{Weights: []float64{2, 1}},
		{Weights: []float64{1, 2}},
	}
	for _, maxNodes := range sizes {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("n%d/seed%d", maxNodes, seed), func(t *testing.T) {
				// Budget low enough that every size actually prunes.
				budget := 2 * maxNodes * maxNodes / 8
				full := buildWideStack(t, seed, maxNodes, SchedulerConfig{Seed: seed})
				greedy := buildWideStack(t, seed, maxNodes, SchedulerConfig{Seed: seed, Prune: GreedyPrune(budget)})
				for _, s := range []*Scheduler{full, greedy} {
					if err := s.Bootstrap(tpch.QueryQ12, 25); err != nil {
						t.Fatal(err)
					}
				}
				fsw, err := full.PlanSweep(context.Background(), tpch.QueryQ12)
				if err != nil {
					t.Fatal(err)
				}
				gsw, err := greedy.PlanSweep(context.Background(), tpch.QueryQ12)
				if err != nil {
					t.Fatal(err)
				}
				if gsw.PlansEstimated >= gsw.PlanSpace {
					t.Fatalf("greedy did not prune: %d of %d", gsw.PlansEstimated, gsw.PlanSpace)
				}
				for _, pol := range policies {
					fi, err := fsw.Select(pol)
					if err != nil {
						t.Fatal(err)
					}
					gi, err := gsw.Select(pol)
					if err != nil {
						t.Fatal(err)
					}
					fc, gc := fsw.Costs[fi], gsw.Costs[gi]
					for m := range fc {
						denom := math.Max(math.Abs(fc[m]), 1e-9)
						if delta := math.Abs(gc[m]-fc[m]) / denom; delta > tolerance {
							t.Errorf("weights %v metric %d: greedy %.4f vs full %.4f (Δ %.1f%% > %.0f%%)",
								pol.Weights, m, gc[m], fc[m], 100*delta, 100*tolerance)
						}
					}
				}
			})
		}
	}
}

// TestGreedyPruneSmallLatticeFallsBackToFull: lattices within budget
// are swept in full, so small federations keep the exact reference
// behavior (modulo the policy label).
func TestGreedyPruneSmallLatticeFallsBackToFull(t *testing.T) {
	full := buildStack(t, 5, SchedulerConfig{Seed: 5})
	greedy := buildStack(t, 5, SchedulerConfig{Seed: 5, Prune: GreedyPrune(0)})
	for _, s := range []*Scheduler{full, greedy} {
		if err := s.Bootstrap(tpch.QueryQ12, 25); err != nil {
			t.Fatal(err)
		}
	}
	a, err := full.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := greedy.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		t.Fatal(err)
	}
	// Default topology with default choices: well under the 256 floor.
	if b.PlansEstimated != b.PlanSpace {
		t.Fatalf("small lattice pruned: %d of %d", b.PlansEstimated, b.PlanSpace)
	}
	if b.Policy != "greedy" {
		t.Fatalf("policy label = %q", b.Policy)
	}
	for i := range a.Costs {
		for m := range a.Costs[i] {
			if a.Costs[i][m] != b.Costs[i][m] {
				t.Fatalf("plan %d metric %d: %v vs %v", i, m, a.Costs[i], b.Costs[i])
			}
		}
	}
}

// TestSchedulerRejectsBadNodeChoices: assembly fails fast on malformed
// menus instead of surfacing a lattice error on the first request.
func TestSchedulerRejectsBadNodeChoices(t *testing.T) {
	fed, err := federation.DefaultTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, 1)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, choices := range [][]int{{0}, {-1, 2}, {2, 2}} {
		if _, err := NewScheduler(fed, exec, model, choices, 1); err == nil {
			t.Errorf("NewScheduler accepted node choices %v", choices)
		}
	}
}
