package ires

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/federation"
)

// CompositeDREAMModel is the operator-level variant of the DREAM
// Modelling module. IReS builds one cost model *per operator*; the
// monolithic DREAMModel instead regresses end-to-end plan time, which
// forces a linear model through the inherently non-linear composition
//
//	time = max(leftPrep, rightPrep) + ship + final.
//
// CompositeDREAMModel runs DREAM per piece (each piece is much closer
// to linear in the features) and reassembles the plan's time with the
// true composition rule. Money is predicted directly. It requires a
// history recorded with federation.BreakdownMetrics.
type CompositeDREAMModel struct {
	Est *core.Estimator
}

// NewCompositeDREAMModel builds the operator-level Modelling module.
func NewCompositeDREAMModel(cfg core.Config) (*CompositeDREAMModel, error) {
	est, err := core.NewEstimator(cfg)
	if err != nil {
		return nil, err
	}
	return &CompositeDREAMModel{Est: est}, nil
}

// Name implements CostModel.
func (m *CompositeDREAMModel) Name() string { return "dream-composite" }

// SetModelCacheSize implements ModelCacheSizer.
func (m *CompositeDREAMModel) SetModelCacheSize(n int) { m.Est.SetCacheSize(n) }

// breakdown indices in federation.BreakdownMetrics.
const (
	bdTime = iota
	bdMoney
	bdLeft
	bdRight
	bdShip
	bdFinal
)

// Estimate implements CostModel. The returned vector is in
// federation.Metrics order (time, money) regardless of the history's
// extended metric set.
func (m *CompositeDREAMModel) Estimate(h *core.History, x []float64) ([]float64, error) {
	return m.EstimateSnapshot(h.Snapshot(), x)
}

// EstimateSnapshot implements SnapshotCostModel.
func (m *CompositeDREAMModel) EstimateSnapshot(s *core.Snapshot, x []float64) ([]float64, error) {
	metrics := s.Metrics()
	if len(metrics) != len(federation.BreakdownMetrics) {
		return nil, fmt.Errorf("ires: composite model needs a %d-metric breakdown history, got %d",
			len(federation.BreakdownMetrics), len(metrics))
	}
	est, err := m.Est.EstimateSnapshot(s, x)
	if err != nil {
		return nil, err
	}
	v := est.Values()
	left, right, ship, final := clampZero(v[bdLeft]), clampZero(v[bdRight]), clampZero(v[bdShip]), clampZero(v[bdFinal])
	prep := left
	if right > prep {
		prep = right
	}
	return []float64{prep + ship + final, clampZero(v[bdMoney])}, nil
}

func clampZero(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
