package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/regression"
)

// Table1Pricing reproduces the paper's Table 1: the instance catalogs
// and prices of the two providers the federation spans.
func Table1Pricing() *Table {
	t := &Table{
		Title:  "Table 1: Example of instances pricing.",
		Header: []string{"Provider", "Machine", "vCPU", "Memory (GiB)", "Storage (GiB)", "Price"},
	}
	for _, p := range []*cloud.Provider{cloud.Amazon(), cloud.Microsoft()} {
		for i, it := range p.Instances {
			provider := ""
			if i == 0 {
				provider = p.Name
			}
			storage := "EBS-Only"
			if it.StorageGiB > 0 {
				storage = fmt.Sprintf("%.0f", it.StorageGiB)
			}
			t.Rows = append(t.Rows, []string{
				provider, it.Name,
				fmt.Sprintf("%d", it.VCPU),
				fmt.Sprintf("%.0f", it.MemoryGiB),
				storage,
				fmt.Sprintf("$%.4f/hour", it.PricePerHour),
			})
		}
	}
	return t
}

// paperTable2Data is the exact 10-observation dataset printed in the
// paper's Table 2 (cost, x1, x2).
var paperTable2Data = []regression.Sample{
	{X: []float64{0.4916, 0.2977}, C: 20.640},
	{X: []float64{0.6313, 0.0482}, C: 15.557},
	{X: []float64{0.9481, 0.8232}, C: 20.971},
	{X: []float64{0.4855, 2.7056}, C: 24.878},
	{X: []float64{0.0125, 2.7268}, C: 23.274},
	{X: []float64{0.9029, 2.6456}, C: 30.216},
	{X: []float64{0.7233, 3.0640}, C: 29.978},
	{X: []float64{0.8749, 4.2847}, C: 31.702},
	{X: []float64{0.3354, 2.1082}, C: 20.860},
	{X: []float64{0.8521, 4.8217}, C: 32.836},
}

// PaperTable2R2 is the R² column as printed in the paper, keyed by M.
var PaperTable2R2 = map[int]float64{
	4: 0.7571, 5: 0.7705, 6: 0.8371, 7: 0.8788,
	8: 0.8876, 9: 0.8751, 10: 0.8945,
}

// Table2R2 recomputes the paper's Table 2 — R² of the MLR model as the
// window M grows over the published dataset — with our own solver, and
// prints the paper's value next to ours. Agreement here validates the
// regression kernel end to end.
func Table2R2() (*Table, error) {
	t := &Table{
		Title:  "Table 2: Using MLR in different size of dataset.",
		Header: []string{"M", "R² (this repo)", "R² (paper)", "|diff|"},
		Notes: []string{
			"fit over the first M rows of the paper's published 10-point dataset",
		},
	}
	for m := 4; m <= 10; m++ {
		model, err := regression.Fit(paperTable2Data[:m], regression.FitOptions{})
		if err != nil {
			return nil, fmt.Errorf("experiments: table 2 fit at M=%d: %w", m, err)
		}
		paper := PaperTable2R2[m]
		diff := model.R2 - paper
		if diff < 0 {
			diff = -diff
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%.4f", model.R2),
			fmt.Sprintf("%.4f", paper),
			fmt.Sprintf("%.4f", diff),
		})
	}
	return t, nil
}
