package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/moo"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Ablation runners for the design choices DESIGN.md calls out. Each
// returns a Table plus the raw numbers so benches and tests can assert
// on them.

// AblationOptions is shared by the ablation studies.
type AblationOptions struct {
	Reps int
	Seed int64
}

func (o *AblationOptions) setDefaults() {
	if o.Reps <= 0 {
		o.Reps = 3
	}
}

// runDREAMVariant scores one DREAM configuration with the standard
// workload protocol, averaged over reps, and reports mean MRE plus the
// mean converged window size.
func runDREAMVariant(cfg core.Config, opts AblationOptions, q tpch.QueryID) (mre float64, meanWindow float64, refits float64, err error) {
	opts.setDefaults()
	var mreSum, windowSum, refitSum float64
	var windowN int
	for rep := 0; rep < opts.Reps; rep++ {
		seed := opts.Seed + int64(rep)*977
		h, err := workload.NewHarness(seed)
		if err != nil {
			return 0, 0, 0, err
		}
		model, err := ires.NewDREAMModel(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := h.Run(workload.EvalConfig{
			Query: q, SF: 0.1, Seed: seed,
		}, []workload.ModelSpec{{Name: "variant", Model: model}})
		if err != nil {
			return 0, 0, 0, err
		}
		mreSum += res.Scores["variant"].TimeMRE

		// Probe converged window sizes on the final history.
		est, err := core.NewEstimator(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		hist := res.History
		for i := 0; i < 10; i++ {
			obs := hist.At(hist.Len() - 1 - i)
			e, err := est.EstimateCostValue(hist, obs.X)
			if err != nil {
				continue
			}
			windowSum += float64(e.WindowSize)
			refitSum += float64(e.Refits)
			windowN++
		}
	}
	if windowN == 0 {
		return 0, 0, 0, fmt.Errorf("experiments: no window probes succeeded")
	}
	return mreSum / float64(opts.Reps), windowSum / float64(windowN), refitSum / float64(windowN), nil
}

// AblationWindowGrowth contrasts the paper's grow-by-one schedule with
// doubling.
func AblationWindowGrowth(opts AblationOptions) (*Table, error) {
	t := &Table{
		Title:  "Ablation: DREAM window growth policy (Q12, 100 MiB).",
		Header: []string{"Growth", "Time MRE", "Mean window", "Mean refits"},
	}
	mmax := 3 * (federation.FeatureDim + 2)
	for _, tc := range []struct {
		name   string
		growth core.GrowthPolicy
	}{
		{"grow-by-one (paper)", core.GrowByOne},
		{"doubling", core.Doubling},
	} {
		mre, win, refits, err := runDREAMVariant(core.Config{Growth: tc.growth, MMax: mmax}, opts, tpch.QueryQ12)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tc.name,
			fmt.Sprintf("%.3f", mre),
			fmt.Sprintf("%.1f", win),
			fmt.Sprintf("%.1f", refits),
		})
	}
	return t, nil
}

// AblationR2Threshold sweeps the R²require knob (paper default 0.8).
func AblationR2Threshold(opts AblationOptions) (*Table, error) {
	t := &Table{
		Title:  "Ablation: DREAM R²require threshold (Q12, 100 MiB).",
		Header: []string{"R²require", "Time MRE", "Mean window"},
	}
	mmax := 3 * (federation.FeatureDim + 2)
	for _, r2 := range []float64{0.6, 0.7, 0.8, 0.9, 0.95} {
		mre, win, _, err := runDREAMVariant(core.Config{RequiredR2: r2, MMax: mmax}, opts, tpch.QueryQ12)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", r2),
			fmt.Sprintf("%.3f", mre),
			fmt.Sprintf("%.1f", win),
		})
	}
	return t, nil
}

// AblationRecency contrasts DREAM's most-recent window with a uniform
// sample over all history — isolating how much of DREAM's accuracy
// comes from recency rather than window size.
func AblationRecency(opts AblationOptions) (*Table, error) {
	t := &Table{
		Title:  "Ablation: DREAM window selection (Q12, 100 MiB).",
		Header: []string{"Window policy", "Time MRE"},
	}
	mmax := 3 * (federation.FeatureDim + 2)
	for _, tc := range []struct {
		name   string
		window core.WindowPolicy
	}{
		{"most recent (paper)", core.MostRecent},
		{"uniform sample", core.UniformSample},
	} {
		mre, _, _, err := runDREAMVariant(core.Config{Window: tc.window, MMax: mmax, Seed: opts.Seed}, opts, tpch.QueryQ12)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{tc.name, fmt.Sprintf("%.3f", mre)})
	}
	return t, nil
}

// AblationComposite contrasts the monolithic DREAM model (one
// regression over end-to-end plan time) with the operator-level
// composite model (per-piece regressions reassembled through the plan's
// max/sum structure, the way IReS models per operator).
func AblationComposite(opts AblationOptions) (*Table, error) {
	opts.setDefaults()
	t := &Table{
		Title:  "Ablation: monolithic vs operator-level DREAM (Q12, 100 MiB).",
		Header: []string{"Model", "Time MRE"},
		Notes: []string{
			"composite predicts each operator separately and reassembles time = max(preps) + ship + final",
		},
	}
	cfg := core.Config{MMax: 3 * (federation.FeatureDim + 2)}
	sums := map[string]float64{}
	for rep := 0; rep < opts.Reps; rep++ {
		seed := opts.Seed + int64(rep)*601
		h, err := workload.NewHarness(seed)
		if err != nil {
			return nil, err
		}
		mono, err := ires.NewDREAMModel(cfg)
		if err != nil {
			return nil, err
		}
		comp, err := ires.NewCompositeDREAMModel(cfg)
		if err != nil {
			return nil, err
		}
		res, err := h.Run(workload.EvalConfig{
			Query: tpch.QueryQ12, SF: 0.1, Seed: seed,
			RecordBreakdown: true,
		}, []workload.ModelSpec{
			{Name: "monolithic", Model: mono},
			{Name: "composite", Model: comp},
		})
		if err != nil {
			return nil, err
		}
		for name, s := range res.Scores {
			sums[name] += s.TimeMRE
		}
	}
	for _, name := range []string{"monolithic", "composite"} {
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.3f", sums[name]/float64(opts.Reps))})
	}
	return t, nil
}

// AblationOptimizer compares NSGA-II, NSGA-G and exhaustive Pareto
// enumeration on the same estimated plan space: front quality (best
// achievable weighted score) and wall time.
func AblationOptimizer(opts AblationOptions) (*Table, error) {
	opts.setDefaults()
	fed, err := federation.DefaultTopology(opts.Seed)
	if err != nil {
		return nil, err
	}
	cal, err := federation.Calibrate(fed, 0.004, opts.Seed)
	if err != nil {
		return nil, err
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		return nil, err
	}
	// CacheSize -1: the wall-time contrast below is about estimation
	// cost, so each path must pay its own window searches.
	dream, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2), CacheSize: -1})
	if err != nil {
		return nil, err
	}
	sched, err := ires.NewScheduler(fed, exec, dream, []int{1, 2, 4, 8, 16}, opts.Seed)
	if err != nil {
		return nil, err
	}
	if err := sched.Bootstrap(tpch.QueryQ12, 40); err != nil {
		return nil, err
	}
	pol := ires.Policy{Weights: []float64{1, 1}}

	t := &Table{
		Title:  "Ablation: Multi-Objective Optimizer choice (Q12 plan space).",
		Header: []string{"Optimizer", "Front size", "Wall time"},
	}

	gaCfg := moo.NSGAIIConfig{PopSize: 40, Generations: 20, Seed: opts.Seed}

	start := time.Now()
	ga, err := sched.OptimizeGA(tpch.QueryQ12, gaCfg)
	if err != nil {
		return nil, err
	}
	gaTime := time.Since(start)
	if _, err := ga.Select(pol); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"NSGA-II", fmt.Sprintf("%d", len(ga.Plans)), fmt.Sprintf("%.1f ms", float64(gaTime.Microseconds())/1000),
	})

	// NSGA-G through the same problem embedding: reuse OptimizeGA's
	// machinery by running NSGAG over the exhaustive estimates instead —
	// enumerate, estimate, then reduce with each strategy.
	start = time.Now()
	plans, err := fed.EnumeratePlans(tpch.QueryQ12, sched.NodeChoices)
	if err != nil {
		return nil, err
	}
	costs := make([][]float64, len(plans))
	for i, p := range plans {
		x, err := exec.Features(p)
		if err != nil {
			return nil, err
		}
		c, err := dream.Estimate(sched.History(tpch.QueryQ12), x)
		if err != nil {
			return nil, err
		}
		costs[i] = c
	}
	front, err := moo.ParetoFront(costs)
	if err != nil {
		return nil, err
	}
	exhaustiveTime := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"exhaustive Pareto", fmt.Sprintf("%d", len(front)), fmt.Sprintf("%.1f ms", float64(exhaustiveTime.Microseconds())/1000),
	})
	t.Notes = append(t.Notes,
		"exhaustive enumeration is feasible at this plan-space size; the GA pays off when the space explodes (Example 3.1)")
	return t, nil
}
