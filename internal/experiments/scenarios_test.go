package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/scenario"
)

// One spec per arrival kind, crossed with distinct chaos profiles, so
// the reproducibility family exercises every process and the seam
// without paying for the full 15-cell matrix in the race suite.
func reproSpecs() []scenario.Spec {
	return []scenario.Spec{
		{Arrival: "poisson", Chaos: "none", Events: 25, Seed: 101},
		{Arrival: "bursty", Chaos: "mixed", Events: 25, Seed: 202},
		{Arrival: "diurnal", Chaos: "outages", Events: 25, Seed: 303},
	}
}

// The seed-reproducibility family: every scenario run twice with the
// same seed must produce a byte-identical event trace AND an identical
// decision sequence — plans, estimates, measurements, Pareto sizes.
func TestScenarioSeedReproducibility(t *testing.T) {
	for _, spec := range reproSpecs() {
		spec := spec
		t.Run(spec.Arrival+"_"+spec.Chaos, func(t *testing.T) {
			t.Parallel()
			evA, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			evB, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			var ba, bb bytes.Buffer
			if err := scenario.WriteTrace(&ba, evA); err != nil {
				t.Fatal(err)
			}
			if err := scenario.WriteTrace(&bb, evB); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
				t.Fatal("same seed produced different trace bytes")
			}

			queries := []string{"Q12", "Q13"}
			r1, err := RunScenario(spec, queries)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RunScenario(spec, queries)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Decisions, r2.Decisions) {
				for i := range r1.Decisions {
					if !reflect.DeepEqual(r1.Decisions[i], r2.Decisions[i]) {
						t.Fatalf("decision %d diverged across identically seeded runs:\n run1 %+v\n run2 %+v",
							i, r1.Decisions[i], r2.Decisions[i])
					}
				}
				t.Fatal("decision sequences diverged across identically seeded runs")
			}
			if r1.Faults != r2.Faults {
				t.Fatalf("fault schedules diverged: %+v vs %+v", r1.Faults, r2.Faults)
			}
		})
	}
}

func TestRunScenariosRendersTable(t *testing.T) {
	rows, table, err := RunScenarios(ScenarioOptions{
		Seed:   7,
		Events: 20,
		Specs: []scenario.Spec{
			{Arrival: "poisson", Chaos: "none", Seed: 7},
			{Arrival: "bursty", Chaos: "stragglers", Seed: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(table.Rows) != 2 {
		t.Fatalf("got %d rows / %d table rows, want 2/2", len(rows), len(table.Rows))
	}
	for _, r := range rows {
		if r.Events != 20 {
			t.Fatalf("%s: ran %d events, want 20", r.Spec.Name, r.Events)
		}
		if r.MRETime <= 0 || r.P99TimeS < r.P50TimeS {
			t.Fatalf("%s: degenerate metrics %+v", r.Spec.Name, r)
		}
		if len(r.Decisions) != r.Events {
			t.Fatalf("%s: %d decisions for %d events", r.Spec.Name, len(r.Decisions), r.Events)
		}
	}
	// rows[0] is the chaos-free cell: nothing may have been injected.
	if f := rows[0].Faults; f != (cloud.FaultCounts{}) {
		t.Fatalf("chaos-free scenario reported faults %+v", f)
	}
	out := table.Render()
	if len(out) == 0 {
		t.Fatal("empty table render")
	}
}

func TestRunScenarioRejectsUnknownChaos(t *testing.T) {
	if _, err := RunScenario(scenario.Spec{Chaos: "nope", Seed: 1}, []string{"Q12"}); err == nil {
		t.Fatal("unknown chaos profile must error")
	}
}
