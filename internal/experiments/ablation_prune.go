package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/tpch"
)

// PruneTolerance is the decision-quality bound the pruned sweep is held
// to: every metric of the plan Select picks from a GreedyPrune sweep
// must be within this relative distance of the plan the full sweep
// picks. The CI smoke (make ablate-prune) fails when drift exceeds it.
const PruneTolerance = 0.15

// PruneAblationRow is one lattice size of the full-vs-pruned study.
type PruneAblationRow struct {
	// MaxNodes is the per-site cluster cap; the WideTopology lattice has
	// 2·MaxNodes² QEPs.
	MaxNodes int
	// PlanSpace is the full lattice size; FullEstimated and
	// PrunedEstimated are the QEPs each policy actually scored.
	PlanSpace       int
	FullEstimated   int
	PrunedEstimated int
	// FullMS and PrunedMS time one warm PlanSweep (model fit amortized
	// by the cache, so the contrast isolates per-plan estimation work).
	FullMS   float64
	PrunedMS float64
	// CountReduction = PlanSpace / PrunedEstimated — the deterministic
	// measure of sweep-cost reduction the smoke test gates on.
	CountReduction float64
	// MaxRelDelta is the worst per-metric relative difference between
	// the plans Select picks from the two sweeps, maximized over the
	// studied policy weightings.
	MaxRelDelta float64
}

// pruneStack assembles one WideTopology scheduler for the study; both
// arms call it with the same seed so their bootstrapped histories — and
// therefore their fitted models — are identical.
func pruneStack(seed int64, maxNodes int, prune ires.PrunePolicy) (*ires.Scheduler, error) {
	fed, err := federation.WideTopology(seed, maxNodes)
	if err != nil {
		return nil, err
	}
	cal, err := federation.Calibrate(fed, 0.004, seed)
	if err != nil {
		return nil, err
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.05)
	if err != nil {
		return nil, err
	}
	model, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		return nil, err
	}
	return ires.NewSchedulerWithConfig(fed, exec, model, ires.SchedulerConfig{
		NodeChoices: federation.NodeRange(maxNodes),
		Seed:        seed,
		Prune:       prune,
	})
}

// timedSweep runs one untimed warm-up PlanSweep (paying the shared
// window-search fit) and then times a second, returning it.
func timedSweep(s *ires.Scheduler, q tpch.QueryID) (*ires.Sweep, float64, error) {
	ctx := context.Background()
	if _, err := s.PlanSweep(ctx, q); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	sw, err := s.PlanSweep(ctx, q)
	if err != nil {
		return nil, 0, err
	}
	return sw, float64(time.Since(start).Microseconds()) / 1000, nil
}

// AblationPrune contrasts the default full sweep with GreedyPrune on
// identically seeded WideTopology federations at several lattice sizes,
// up to the paper's Example 3.1 regime (18,200+ QEPs at maxNodes 96).
// Both arms bootstrap the same history; Select (which does not execute)
// then picks a plan from each sweep under several policy weightings and
// the rows report how far the pruned decision's cost vector drifts from
// the full one, alongside the count- and time-based sweep-cost savings.
func AblationPrune(opts AblationOptions) ([]PruneAblationRow, *Table, error) {
	opts.setDefaults()
	const q = tpch.QueryQ12
	policies := []ires.Policy{
		{Weights: []float64{1, 1}},
		{Weights: []float64{2, 1}},
		{Weights: []float64{1, 2}},
	}

	var rows []PruneAblationRow
	for _, maxNodes := range []int{10, 32, 96} {
		full, err := pruneStack(opts.Seed, maxNodes, nil)
		if err != nil {
			return nil, nil, err
		}
		pruned, err := pruneStack(opts.Seed, maxNodes, ires.GreedyPrune(0))
		if err != nil {
			return nil, nil, err
		}
		if err := full.Bootstrap(q, 24); err != nil {
			return nil, nil, err
		}
		if err := pruned.Bootstrap(q, 24); err != nil {
			return nil, nil, err
		}
		fsw, fullMS, err := timedSweep(full, q)
		if err != nil {
			return nil, nil, err
		}
		gsw, prunedMS, err := timedSweep(pruned, q)
		if err != nil {
			return nil, nil, err
		}

		var worst float64
		for _, pol := range policies {
			fi, err := fsw.Select(pol)
			if err != nil {
				return nil, nil, err
			}
			gi, err := gsw.Select(pol)
			if err != nil {
				return nil, nil, err
			}
			for m := range fsw.Costs[fi] {
				fc, gc := fsw.Costs[fi][m], gsw.Costs[gi][m]
				denom := math.Max(math.Abs(fc), 1e-12)
				if d := math.Abs(gc-fc) / denom; d > worst {
					worst = d
				}
			}
		}
		rows = append(rows, PruneAblationRow{
			MaxNodes:        maxNodes,
			PlanSpace:       fsw.PlanSpace,
			FullEstimated:   fsw.PlansEstimated,
			PrunedEstimated: gsw.PlansEstimated,
			FullMS:          fullMS,
			PrunedMS:        prunedMS,
			CountReduction:  float64(fsw.PlanSpace) / float64(gsw.PlansEstimated),
			MaxRelDelta:     worst,
		})
	}

	t := &Table{
		Title: "Ablation: full vs GreedyPrune plan sweeps (Q12, WideTopology).",
		Header: []string{"Max nodes", "Plan space", "Estimated (full)", "Estimated (greedy)",
			"Full sweep", "Greedy sweep", "Count reduction", "Max decision drift"},
		Notes: []string{
			fmt.Sprintf("decision drift is the worst per-metric relative delta of the Select-chosen cost vectors (tolerance %.2f)", PruneTolerance),
			"greedy uses the default budget; lattices under it fall back to a full sweep",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.MaxNodes),
			fmt.Sprintf("%d", r.PlanSpace),
			fmt.Sprintf("%d", r.FullEstimated),
			fmt.Sprintf("%d", r.PrunedEstimated),
			fmt.Sprintf("%.1f ms", r.FullMS),
			fmt.Sprintf("%.1f ms", r.PrunedMS),
			fmt.Sprintf("%.1fx", r.CountReduction),
			fmt.Sprintf("%.3f", r.MaxRelDelta),
		})
	}
	return rows, t, nil
}
