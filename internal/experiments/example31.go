package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Example31Options tunes the plan-space estimation-throughput study.
type Example31Options struct {
	// Plans is how many equivalent QEPs to estimate (default 2000; the
	// paper's Example 3.1 counts 18,200 for a 70-vCPU/260-GB pool).
	Plans int
	Seed  int64
}

// Example31Result quantifies the paper's Example 3.1 argument: with
// thousands of equivalent QEPs per query, the per-plan estimation cost
// of the Modelling module dominates, so DREAM's small training window
// matters — and, in this implementation, so does reusing the
// plan-independent window fit across the whole plan space.
type Example31Result struct {
	PaperPlanCount int // 70 vCPU × 260 GB = 18,200
	PlansEstimated int
	// DreamNS times DREAM with the model cache disabled (one window
	// search per plan — the paper's cost model); DreamCachedNS times
	// the production pipeline (one search per history version).
	DreamNS, DreamCachedNS, BMLNS int64 // total estimation wall time
}

// RunExample31 measures per-plan estimation cost of DREAM (small
// dynamic window) against the unbounded-history BML baseline over a
// large set of equivalent plans.
func RunExample31(opts Example31Options) (*Example31Result, *Table, error) {
	if opts.Plans <= 0 {
		opts.Plans = 2000
	}
	h, err := workload.NewHarness(opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	models, err := workload.PaperModels(opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	// Build a history with the default protocol, then time estimation
	// sweeps over the enumerated plan space.
	evalRes, err := h.Run(workload.EvalConfig{
		Query: tpch.QueryQ12, SF: 0.1, Seed: opts.Seed,
		HistorySize: 80, TestQueries: 20,
	}, models)
	if err != nil {
		return nil, nil, err
	}
	history := evalRes.History

	exec, err := federation.NewScaledExecutor(h.Fed, h.Cal, 0.1)
	if err != nil {
		return nil, nil, err
	}
	plans, err := h.Fed.EnumeratePlans(tpch.QueryQ12, []int{1, 2, 3, 4, 6, 8, 10, 12, 14, 16})
	if err != nil {
		return nil, nil, err
	}
	features := make([][]float64, 0, opts.Plans)
	for i := 0; i < opts.Plans; i++ {
		x, err := exec.Features(plans[i%len(plans)])
		if err != nil {
			return nil, nil, err
		}
		features = append(features, x)
	}

	mmax := 3 * (federation.FeatureDim + 2)
	// CacheSize -1: this study measures Algorithm 1's per-plan cost, so
	// every estimate must pay its own window search.
	dream, err := ires.NewDREAMModel(core.Config{MMax: mmax, CacheSize: -1})
	if err != nil {
		return nil, nil, err
	}
	dreamCached, err := ires.NewDREAMModel(core.Config{MMax: mmax})
	if err != nil {
		return nil, nil, err
	}
	bml := &ires.BMLModel{WindowMultiple: 0, Seed: opts.Seed}

	res := &Example31Result{PaperPlanCount: 70 * 260, PlansEstimated: len(features)}
	start := time.Now()
	for _, x := range features {
		if _, err := dream.Estimate(history, x); err != nil {
			return nil, nil, err
		}
	}
	res.DreamNS = time.Since(start).Nanoseconds()
	start = time.Now()
	for _, x := range features {
		if _, err := dreamCached.Estimate(history, x); err != nil {
			return nil, nil, err
		}
	}
	res.DreamCachedNS = time.Since(start).Nanoseconds()
	start = time.Now()
	for _, x := range features {
		if _, err := bml.Estimate(history, x); err != nil {
			return nil, nil, err
		}
	}
	res.BMLNS = time.Since(start).Nanoseconds()

	perPlan := func(total int64) string {
		return fmt.Sprintf("%.1f µs", float64(total)/1e3/float64(res.PlansEstimated))
	}
	extrapolate := func(total int64) string {
		return fmt.Sprintf("%.2f s", float64(total)/1e9/float64(res.PlansEstimated)*float64(res.PaperPlanCount))
	}
	t := &Table{
		Title:  "Example 3.1: estimating equivalent QEPs of one query (70 vCPU × 260 GB ⇒ 18,200 QEPs).",
		Header: []string{"Model", "Plans estimated", "Per-plan cost", "Extrapolated to 18,200 QEPs"},
		Rows: [][]string{
			{"DREAM (fit per plan)", fmt.Sprintf("%d", res.PlansEstimated), perPlan(res.DreamNS), extrapolate(res.DreamNS)},
			{"DREAM (cached fit)", fmt.Sprintf("%d", res.PlansEstimated), perPlan(res.DreamCachedNS), extrapolate(res.DreamCachedNS)},
			{"BML (full history)", fmt.Sprintf("%d", res.PlansEstimated), perPlan(res.BMLNS), extrapolate(res.BMLNS)},
		},
		Notes: []string{
			fmt.Sprintf("history length %d; DREAM trains on a window near N = %d",
				history.Len(), federation.FeatureDim+2),
			"cached fit: one window search per history version, shared by every plan of the space",
		},
	}
	return res, t, nil
}
