// Package experiments regenerates every table and figure of the paper's
// evaluation (and the ablations DESIGN.md calls out) as plain-text
// tables, so `midasctl` and the benchmark harness print the same rows
// the paper reports. Absolute numbers come from the simulated
// federation, not the authors' testbed; EXPERIMENTS.md records the
// shape comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}
