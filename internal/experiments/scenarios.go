package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tpch"
)

// This file wires the scenario engine into the evaluation harness: each
// scenario (arrival process × chaos profile) drives one online serving
// campaign, and the table reports how estimation (MRE) and decision
// quality degrade as the cloud misbehaves — the adversarial complement
// to the paper's steady-state Tables 3/4 protocol.

// ScenarioOptions tunes the scenario sweep.
type ScenarioOptions struct {
	// Seed derives every scenario's seed (default 42).
	Seed int64
	// Events per scenario (default 120).
	Events int
	// Specs overrides the standard scenario.Matrix grid.
	Specs []scenario.Spec
	// Queries is the mix each scenario draws from (default Q12+Q13).
	Queries []string
}

func (o *ScenarioOptions) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Events <= 0 {
		o.Events = 120
	}
	if len(o.Specs) == 0 {
		o.Specs = scenario.Matrix(o.Seed)
	}
	if len(o.Queries) == 0 {
		o.Queries = []string{"Q12", "Q13"}
	}
}

// DecisionPoint is the deterministic signature of one scheduling round
// — everything that is a pure function of (history, plan space), and
// nothing (like wall-clock) that is not. The seed-reproducibility tests
// compare these across runs byte for byte.
type DecisionPoint struct {
	Query      string
	Plan       string
	Estimated  []float64
	Measured   []float64
	ParetoSize int
}

// ScenarioResult is one row of the scenario table.
type ScenarioResult struct {
	Spec   scenario.Spec
	Events int
	// MRETime / MREMoney are the paper's eq. 15 mean relative error of
	// the chosen plan's predicted vs measured cost, per metric.
	MRETime, MREMoney float64
	// Regret is the mean post-hoc regret of the chosen plan: after the
	// measurement lands and the model refits, the whole plan space is
	// re-scored, every cost vector min-max normalized over the sweep,
	// and the chosen plan's normalized weighted score compared against
	// the best one. 0 means the choice is still optimal under the refit
	// model; the scale is weight-sum-bounded, so cells are comparable.
	// Steady-state scenarios should hug 0; chaos makes decisions that
	// age badly.
	Regret float64
	// P50TimeS / P99TimeS are percentiles of the measured execution
	// times — p99 is where outages and stragglers live.
	P50TimeS, P99TimeS float64
	// Faults counts the chaos windows actually injected.
	Faults cloud.FaultCounts
	// Decisions is the full decision sequence (reproducibility probe).
	Decisions []DecisionPoint
}

// scenarioStack builds one serving stack for a scenario, bootstrapped
// on the well-behaved cloud; chaos attaches only after bootstrap, so
// every campaign starts from an honestly trained model.
func scenarioStack(spec scenario.Spec, queries []string) (*ires.Scheduler, *federation.Federation, error) {
	fed, err := federation.DefaultTopology(spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	cal, err := federation.Calibrate(fed, 0.004, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		return nil, nil, err
	}
	model, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		return nil, nil, err
	}
	sched, err := ires.NewScheduler(fed, exec, model, []int{1, 2, 4}, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	for _, qs := range queries {
		q, err := tpch.ParseQueryID(qs)
		if err != nil {
			return nil, nil, err
		}
		if err := sched.Bootstrap(q, 20); err != nil {
			return nil, nil, err
		}
	}
	return sched, fed, nil
}

// RunScenario executes one scenario campaign and reports its row.
func RunScenario(spec scenario.Spec, queries []string) (*ScenarioResult, error) {
	profile, err := spec.Profile()
	if err != nil {
		return nil, err
	}
	if len(spec.Queries) == 0 {
		spec.Queries = queries
	}
	events, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	sched, fed, err := scenarioStack(spec, queries)
	if err != nil {
		return nil, err
	}
	chaos := scenario.AttachChaos(fed, profile, spec.Seed)
	defer scenario.DetachChaos(fed)

	ctx := context.Background()
	pol := ires.Policy{Weights: []float64{1, 1}}
	res := &ScenarioResult{Spec: spec, Events: len(events)}
	var estT, measT, estM, measM, times []float64
	var regretSum float64
	var prev time.Duration
	for _, ev := range events {
		// Long arrival gaps advance the cloud further between queries:
		// one extra load tick per 100ms of schedule gap (capped), so
		// burstiness and lulls actually reach the drift dynamics.
		gap := ev.Offset - prev
		prev = ev.Offset
		for i, n := 0, int(gap/(100*time.Millisecond)); i < n && i < 20; i++ {
			for _, site := range fed.Sites {
				site.Load.Tick()
			}
		}
		q, err := tpch.ParseQueryID(ev.Query)
		if err != nil {
			return nil, err
		}
		dec, err := sched.Submit(q, pol)
		if err != nil {
			return nil, err
		}
		estT = append(estT, dec.Estimated[0])
		measT = append(measT, dec.Outcome.TimeS)
		estM = append(estM, dec.Estimated[1])
		measM = append(measM, dec.Outcome.MoneyUSD)
		times = append(times, dec.Outcome.TimeS)
		res.Decisions = append(res.Decisions, DecisionPoint{
			Query:      ev.Query,
			Plan:       dec.Plan.String(),
			Estimated:  append([]float64(nil), dec.Estimated...),
			Measured:   []float64{dec.Outcome.TimeS, dec.Outcome.MoneyUSD},
			ParetoSize: dec.ParetoSize,
		})

		// Post-hoc regret: re-score the whole plan space with the model
		// as it stands *after* this measurement landed, and ask how far
		// the choice sits above the new best under the selection rule's
		// own normalized weighted score.
		sw, err := sched.PlanSweep(ctx, q)
		if err != nil {
			return nil, err
		}
		if r, ok := sweepRegret(sw, dec.Plan, pol.Weights); ok {
			regretSum += r
		}
	}

	if res.MRETime, err = stats.MRE(measT, estT); err != nil {
		return nil, err
	}
	if res.MREMoney, err = stats.MRE(measM, estM); err != nil {
		return nil, err
	}
	res.Regret = regretSum / float64(len(events))
	qs, err := stats.Quantiles(times, 0.50, 0.99)
	if err != nil {
		return nil, err
	}
	res.P50TimeS, res.P99TimeS = qs[0], qs[1]
	if chaos != nil {
		res.Faults = chaos.Counts()
	}
	return res, nil
}

// sweepRegret scores the chosen plan against the sweep's best under a
// min-max normalized weighted sum over the whole estimated plan space —
// the same scalarization shape the selection rule uses, so the regret
// is unit-free and bounded by the weight sum. ok is false when the
// chosen plan is not in the sweep (a pruning policy dropped it).
func sweepRegret(sw *ires.Sweep, chosen federation.Plan, weights []float64) (float64, bool) {
	if len(sw.Costs) == 0 {
		return 0, false
	}
	dims := len(sw.Costs[0])
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	copy(lo, sw.Costs[0])
	copy(hi, sw.Costs[0])
	for _, c := range sw.Costs[1:] {
		for d, v := range c {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	score := func(c []float64) float64 {
		s := 0.0
		for d, v := range c {
			if span := hi[d] - lo[d]; span > 0 {
				s += weights[d] * (v - lo[d]) / span
			}
		}
		return s
	}
	chosenScore, best := math.Inf(1), math.Inf(1)
	for i, p := range sw.Plans {
		s := score(sw.Costs[i])
		best = math.Min(best, s)
		if p == chosen {
			chosenScore = s
		}
	}
	if math.IsInf(chosenScore, 1) {
		return 0, false
	}
	return chosenScore - best, true
}

// RunScenarios sweeps the scenario grid and renders the table the
// nightly CI job publishes.
func RunScenarios(opts ScenarioOptions) ([]ScenarioResult, *Table, error) {
	opts.setDefaults()
	var rows []ScenarioResult
	for _, spec := range opts.Specs {
		spec.Events = opts.Events
		spec.Queries = opts.Queries
		r, err := RunScenario(spec, opts.Queries)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		rows = append(rows, *r)
	}

	t := &Table{
		Title: "Scenario sweep: estimation and decision quality under open-loop arrivals and injected faults.",
		Header: []string{"Scenario", "Events", "MRE time", "MRE cost", "Regret",
			"p50 time", "p99 time", "Faults (out/str/spk/rsz)"},
		Notes: []string{
			"MRE is the paper's eq. 15 relative error of the chosen plan's prediction",
			"regret is the chosen plan's normalized weighted-score excess over the refit model's best plan (0 = still optimal)",
			"faults count injected chaos windows: outages/stragglers/price spikes/pool resizes",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Spec.Name,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.3f", r.MRETime),
			fmt.Sprintf("%.3f", r.MREMoney),
			fmt.Sprintf("%.3f", r.Regret),
			fmt.Sprintf("%.2f s", r.P50TimeS),
			fmt.Sprintf("%.2f s", r.P99TimeS),
			fmt.Sprintf("%d/%d/%d/%d", r.Faults.Outages, r.Faults.Stragglers, r.Faults.Spikes, r.Faults.Resizes),
		})
	}
	return rows, t, nil
}
