package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/tpch"
	"repro/internal/workload"
)

// ModelOrder is the column order of the paper's Tables 3 and 4.
var ModelOrder = []string{"BMLN", "BML2N", "BML3N", "BML", "DREAM"}

// MREOptions tunes the Table 3/4 campaigns.
type MREOptions struct {
	// Reps averages the MRE over this many independent repetitions
	// (fresh federation, drift and workload seeds); default 5.
	Reps int
	// HistorySize and TestQueries follow workload defaults when 0.
	HistorySize, TestQueries int
	// Seed is the campaign base seed.
	Seed int64
}

func (o *MREOptions) setDefaults() {
	if o.Reps <= 0 {
		o.Reps = 5
	}
}

// MREResult carries the numeric results behind Table 3/4 so callers
// (tests, EXPERIMENTS.md generation) can assert on them.
type MREResult struct {
	SF float64
	// MRE[query][model] is the mean time-MRE across repetitions.
	MRE map[tpch.QueryID]map[string]float64
}

// BestModel returns the lowest-MRE model for a query.
func (r *MREResult) BestModel(q tpch.QueryID) string {
	best, bestV := "", -1.0
	names := make([]string, 0, len(r.MRE[q]))
	for name := range r.MRE[q] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := r.MRE[q][name]
		if best == "" || v < bestV {
			best, bestV = name, v
		}
	}
	return best
}

// RunMRE executes the Tables 3/4 campaign at the given scale factor:
// for every studied query, evaluate the five Modelling configurations
// on identical drifting workloads and average the Mean Relative Error
// over repetitions. Repetitions are fully independent (own federation,
// drift and workload seeds), so they run in parallel across the
// (query, repetition) grid.
func RunMRE(sf float64, opts MREOptions) (*MREResult, error) {
	opts.setDefaults()

	type cell struct {
		q      tpch.QueryID
		scores map[string]workload.ModelScore
		err    error
	}
	// One job per (query, repetition) cell; each job derives its seed
	// from its grid position so results are identical to a sequential
	// run regardless of scheduling.
	total := len(tpch.AllQueries) * opts.Reps
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > total {
		workers = total
	}
	idx := make(chan int)
	results := make([]cell, total)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				q := tpch.AllQueries[i/opts.Reps]
				rep := i % opts.Reps
				seed := opts.Seed + int64(rep)*1000 + int64(q)
				c := cell{q: q}
				h, err := workload.NewHarness(seed)
				if err != nil {
					c.err = err
					results[i] = c
					continue
				}
				models, err := workload.PaperModels(seed)
				if err != nil {
					c.err = err
					results[i] = c
					continue
				}
				r, err := h.Run(workload.EvalConfig{
					Query:       q,
					SF:          sf,
					HistorySize: opts.HistorySize,
					TestQueries: opts.TestQueries,
					Seed:        seed,
				}, models)
				if err != nil {
					c.err = err
					results[i] = c
					continue
				}
				c.scores = r.Scores
				results[i] = c
			}
		}()
	}
	for i := 0; i < total; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &MREResult{SF: sf, MRE: make(map[tpch.QueryID]map[string]float64)}
	sums := make(map[tpch.QueryID]map[string]float64)
	for _, c := range results {
		if c.err != nil {
			return nil, c.err
		}
		if sums[c.q] == nil {
			sums[c.q] = make(map[string]float64)
		}
		for name, s := range c.scores {
			sums[c.q][name] += s.TimeMRE
		}
	}
	for q, perModel := range sums {
		avg := make(map[string]float64, len(perModel))
		for name, s := range perModel {
			avg[name] = s / float64(opts.Reps)
		}
		res.MRE[q] = avg
	}
	return res, nil
}

// MRETable renders an MREResult in the paper's Table 3/4 layout.
func MRETable(res *MREResult, title string) *Table {
	t := &Table{
		Title:  title,
		Header: append([]string{"Query"}, ModelOrder...),
		Notes: []string{
			"mean relative error of execution-time estimates (eq. 15), lower is better",
		},
	}
	for _, q := range tpch.AllQueries {
		row := []string{fmt.Sprintf("%d", int(q))}
		for _, name := range ModelOrder {
			row = append(row, fmt.Sprintf("%.3f", res.MRE[q][name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3MRE reproduces the paper's Table 3 (100 MiB TPC-H dataset).
func Table3MRE(opts MREOptions) (*MREResult, *Table, error) {
	res, err := RunMRE(0.1, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, MRETable(res, "Table 3: Comparison of mean relative error with 100MiB TPC-H dataset."), nil
}

// Table4MRE reproduces the paper's Table 4 (1 GiB TPC-H dataset).
func Table4MRE(opts MREOptions) (*MREResult, *Table, error) {
	res, err := RunMRE(1, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, MRETable(res, "Table 4: Comparison of mean relative error with 1GiB TPC-H dataset."), nil
}
