package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tpch"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n"},
	}
	out := tbl.Render()
	for _, want := range []string{"T\n", "a", "bb", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1Pricing()
	if len(tbl.Rows) != 11 { // 5 Amazon + 6 Microsoft
		t.Fatalf("Table 1 has %d rows, want 11", len(tbl.Rows))
	}
	out := tbl.Render()
	for _, cell := range []string{"a1.medium", "$0.0049/hour", "B8MS", "$0.3330/hour", "EBS-Only"} {
		if !strings.Contains(out, cell) {
			t.Errorf("Table 1 lacks %q", cell)
		}
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	tbl, err := Table2R2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("Table 2 has %d rows, want 7 (M=4..10)", len(tbl.Rows))
	}
	// Every |diff| cell must be below 5e-4 — the published precision.
	for _, row := range tbl.Rows {
		diff, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad diff cell %q: %v", row[3], err)
		}
		if diff > 5e-4 {
			t.Errorf("M=%s: |R² diff| = %v exceeds published precision", row[0], diff)
		}
	}
}

func TestRunMRESmall(t *testing.T) {
	if testing.Short() {
		t.Skip("MRE campaign is slow for -short")
	}
	res, err := RunMRE(0.1, MREOptions{Reps: 2, HistorySize: 40, TestQueries: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range tpch.AllQueries {
		perModel := res.MRE[q]
		if len(perModel) != len(ModelOrder) {
			t.Fatalf("%v scored %d models, want %d", q, len(perModel), len(ModelOrder))
		}
		for name, v := range perModel {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("%v %s MRE = %v", q, name, v)
			}
		}
		if best := res.BestModel(q); best == "" {
			t.Errorf("%v has no best model", q)
		}
	}
	tbl := MRETable(res, "test")
	if len(tbl.Rows) != len(tpch.AllQueries) {
		t.Errorf("MRE table rows = %d", len(tbl.Rows))
	}
}

func TestRunFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig3 run is slow for -short")
	}
	res, tbl, err := RunFig3(Fig3Options{PolicyChanges: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.GAEvaluations <= 0 || res.WSMEvaluations <= 0 {
		t.Fatalf("evaluation counts: %+v", res)
	}
	// The WSM path must pay per policy; the GA path pays once.
	if res.WSMEvaluations < res.Policies {
		t.Errorf("WSM evaluations %d < policies %d", res.WSMEvaluations, res.Policies)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("Fig3 table rows = %d, want 2", len(tbl.Rows))
	}
}

func TestRunExample31(t *testing.T) {
	if testing.Short() {
		t.Skip("Example 3.1 run is slow for -short")
	}
	res, tbl, err := RunExample31(Example31Options{Plans: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PaperPlanCount != 18200 {
		t.Errorf("paper plan count = %d, want 18200", res.PaperPlanCount)
	}
	if res.DreamNS <= 0 || res.DreamCachedNS <= 0 || res.BMLNS <= 0 {
		t.Fatalf("timings: %+v", res)
	}
	// DREAM's small window must estimate faster than full-history BML.
	if res.DreamNS >= res.BMLNS {
		t.Errorf("DREAM (%d ns) not faster than BML (%d ns) per sweep", res.DreamNS, res.BMLNS)
	}
	// The shared window fit must beat refitting per plan.
	if res.DreamCachedNS >= res.DreamNS {
		t.Errorf("cached DREAM (%d ns) not faster than fit-per-plan DREAM (%d ns)", res.DreamCachedNS, res.DreamNS)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("Example 3.1 table rows = %d, want 3", len(tbl.Rows))
	}
}

// TestAblationPrune is the CI smoke behind `make ablate-prune`: it
// fails when GreedyPrune's decision quality drifts past PruneTolerance
// or its sweep-cost reduction at the Example 3.1 regime falls below the
// 10x the design promises.
func TestAblationPrune(t *testing.T) {
	if testing.Short() {
		t.Skip("prune ablation sweeps an 18k-plan lattice; slow for -short")
	}
	rows, tbl, err := AblationPrune(AblationOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.Render())
	if len(rows) != 3 {
		t.Fatalf("prune ablation rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MaxRelDelta > PruneTolerance {
			t.Errorf("maxNodes=%d: decision drift %.3f exceeds tolerance %.2f",
				r.MaxNodes, r.MaxRelDelta, PruneTolerance)
		}
		if r.FullEstimated != r.PlanSpace {
			t.Errorf("maxNodes=%d: full sweep estimated %d of %d plans",
				r.MaxNodes, r.FullEstimated, r.PlanSpace)
		}
	}
	// The largest lattice must reach the paper's Example 3.1 regime and
	// GreedyPrune must cut its sweep cost by at least 10x.
	last := rows[len(rows)-1]
	if last.PlanSpace < 18200 {
		t.Errorf("largest lattice = %d plans, want >= 18200 (Example 3.1)", last.PlanSpace)
	}
	if last.CountReduction < 10 {
		t.Errorf("count reduction at maxNodes=%d is %.1fx, want >= 10x",
			last.MaxNodes, last.CountReduction)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow for -short")
	}
	opts := AblationOptions{Reps: 1, Seed: 6}
	growth, err := AblationWindowGrowth(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(growth.Rows) != 2 {
		t.Errorf("growth ablation rows = %d", len(growth.Rows))
	}
	r2, err := AblationR2Threshold(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != 5 {
		t.Errorf("r2 ablation rows = %d", len(r2.Rows))
	}
	rec, err := AblationRecency(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rows) != 2 {
		t.Errorf("recency ablation rows = %d", len(rec.Rows))
	}
	opt, err := AblationOptimizer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Rows) != 2 {
		t.Errorf("optimizer ablation rows = %d", len(opt.Rows))
	}
}
