package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/moo"
	"repro/internal/tpch"
)

// Fig3Options tunes the MOQP-approach comparison.
type Fig3Options struct {
	// PolicyChanges is how many times the user policy changes (default 5).
	PolicyChanges int
	// Seed drives the federation and workload.
	Seed int64
}

// Fig3Result carries the numbers behind the Figure 3 comparison.
type Fig3Result struct {
	// GAEvaluations is the one-off Modelling cost of building the
	// Pareto set; WSMEvaluations the cumulative cost of re-running the
	// weighted-sum path for every policy.
	GAEvaluations, WSMEvaluations int
	// GASelectionsNS is the total wall time of the per-policy Pareto
	// selections (nanoseconds) — the cheap step of the GA path.
	GASelectionsNS int64
	// Agreement counts policies where both approaches picked plans
	// whose estimated weighted score differs by less than 10%.
	Agreement, Policies int
}

// RunFig3 contrasts the paper's Figure 3 paths: Multi-Objective
// Optimization based on a genetic algorithm (NSGA-II → Pareto set →
// per-policy BestInPareto) versus repeated Weighted Sum Model
// optimization, across a sequence of user-policy changes.
func RunFig3(opts Fig3Options) (*Fig3Result, *Table, error) {
	if opts.PolicyChanges <= 0 {
		opts.PolicyChanges = 5
	}
	fed, err := federation.DefaultTopology(opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	cal, err := federation.Calibrate(fed, 0.004, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		return nil, nil, err
	}
	dream, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		return nil, nil, err
	}
	sched, err := ires.NewScheduler(fed, exec, dream, []int{1, 2, 4, 8, 16}, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	if err := sched.Bootstrap(tpch.QueryQ12, 40); err != nil {
		return nil, nil, err
	}

	ga, err := sched.OptimizeGA(tpch.QueryQ12, moo.NSGAIIConfig{
		PopSize: 40, Generations: 25, Seed: opts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}

	res := &Fig3Result{GAEvaluations: ga.ModelEvaluations, Policies: opts.PolicyChanges}
	for k := 0; k < opts.PolicyChanges; k++ {
		w := float64(k+1) / float64(opts.PolicyChanges+1)
		pol := ires.Policy{Weights: []float64{w, 1 - w}}

		start := time.Now()
		gaPlan, err := ga.Select(pol)
		if err != nil {
			return nil, nil, err
		}
		res.GASelectionsNS += time.Since(start).Nanoseconds()

		wsm, err := sched.OptimizeWSM(tpch.QueryQ12, pol)
		if err != nil {
			return nil, nil, err
		}
		res.WSMEvaluations += wsm.ModelEvaluations

		// Score both picks with the same model estimates to compare
		// decision quality.
		gaScore, err := planScore(sched, gaPlan, pol)
		if err != nil {
			return nil, nil, err
		}
		wsmScore, err := planScore(sched, wsm.Plan, pol)
		if err != nil {
			return nil, nil, err
		}
		lo, hi := gaScore, wsmScore
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi == 0 || (hi-lo)/hi < 0.10 {
			res.Agreement++
		}
	}

	t := &Table{
		Title:  "Figure 3: GA-based MOQP vs Weighted Sum Model MOQP (Q12, 100 MiB).",
		Header: []string{"Approach", "Model evaluations", "Per-policy step", "Policy agreement"},
		Rows: [][]string{
			{
				"NSGA-II + BestInPareto",
				fmt.Sprintf("%d (once)", res.GAEvaluations),
				fmt.Sprintf("%.3f ms Pareto selection", float64(res.GASelectionsNS)/1e6/float64(res.Policies)),
				fmt.Sprintf("%d/%d within 10%%", res.Agreement, res.Policies),
			},
			{
				"Weighted Sum Model",
				fmt.Sprintf("%d (%d policies × full plan space)", res.WSMEvaluations, res.Policies),
				"full re-optimization",
				"(reference)",
			},
		},
		Notes: []string{
			"the GA path pays Modelling once and reuses its Pareto set across policy changes",
		},
	}
	return res, t, nil
}

// planScore estimates a plan with the scheduler's model and scalarizes
// it under the policy.
func planScore(s *ires.Scheduler, p federation.Plan, pol ires.Policy) (float64, error) {
	x, err := s.Exec.Features(p)
	if err != nil {
		return 0, err
	}
	c, err := s.Model.Estimate(s.History(p.Query), x)
	if err != nil {
		return 0, err
	}
	return moo.WeightedSum(c, pol.Weights)
}
