package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ires"
	"repro/internal/tpch"
)

func TestCompositeThroughWorkloadHarness(t *testing.T) {
	h, err := NewHarness(62)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := ires.NewDREAMModel(core.Config{MMax: 21})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := ires.NewCompositeDREAMModel(core.Config{MMax: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(EvalConfig{
		Query: tpch.QueryQ12, SF: 0.1, Seed: 62,
		HistorySize: 40, TestQueries: 15,
		RecordBreakdown: true,
	}, []ModelSpec{
		{Name: "mono", Model: mono},
		{Name: "comp", Model: comp},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range res.Scores {
		if s.Failures > 2 {
			t.Errorf("%s failed %d times", name, s.Failures)
		}
		if s.TimeMRE <= 0 {
			t.Errorf("%s TimeMRE = %v", name, s.TimeMRE)
		}
		t.Logf("%s: time MRE %.3f", name, s.TimeMRE)
	}
}
