package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
)

// This file extends the evaluation harness with a closed-loop HTTP load
// generator for the midasd serving layer: N concurrent clients each
// submit queries back to back, and the run is summarized as sustained
// QPS plus latency percentiles — the measured number behind the
// ROADMAP's "fast as the hardware allows".

// LoadConfig parameterizes one load-generation run.
type LoadConfig struct {
	// BaseURL of the midasd instance, e.g. "http://localhost:8642".
	BaseURL string
	// Federation and Query name what to submit (Federation may stay
	// empty on a single-tenant server; Query defaults to "Q12").
	Federation string
	Query      string
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Requests caps submissions per client; 0 runs until Duration.
	Requests int
	// Duration bounds the run when Requests is 0 (default 10s).
	Duration time.Duration
	// Weights is the submitted policy (default {1, 1}).
	Weights []float64
	// TimeoutMS rides along on every request body.
	TimeoutMS int64
	// HTTPTimeout caps one HTTP round trip (default 60s).
	HTTPTimeout time.Duration
}

func (c *LoadConfig) setDefaults() error {
	if c.BaseURL == "" {
		return errors.New("workload: load config needs a BaseURL")
	}
	if c.Query == "" {
		c.Query = "Q12"
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Clients < 1 {
		return fmt.Errorf("workload: non-positive client count %d", c.Clients)
	}
	if c.Requests < 0 {
		return fmt.Errorf("workload: negative request count %d", c.Requests)
	}
	if c.Requests == 0 && c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.HTTPTimeout == 0 {
		c.HTTPTimeout = 60 * time.Second
	}
	if len(c.Weights) == 0 {
		c.Weights = []float64{1, 1}
	}
	return nil
}

// LoadReport summarizes one run.
type LoadReport struct {
	Clients  int
	Requests int
	// Errors counts transport failures and non-200 responses; a clean
	// run has zero.
	Errors int
	// Coalesced counts responses served from a shared plan sweep.
	Coalesced int
	Elapsed   time.Duration
	// QPS is completed requests per second of wall time.
	QPS float64
	// Latency percentiles over successful requests, milliseconds.
	P50MS, P90MS, P99MS, MaxMS float64
	// StatusCounts tallies responses by HTTP status (0 = transport
	// error).
	StatusCounts map[int]int
}

func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d clients, %d requests in %.2fs: %.1f QPS, p50 %.1fms, p90 %.1fms, p99 %.1fms, max %.1fms, %d errors, %d coalesced",
		r.Clients, r.Requests, r.Elapsed.Seconds(), r.QPS,
		r.P50MS, r.P90MS, r.P99MS, r.MaxMS, r.Errors, r.Coalesced)
}

// clientResult is one worker's tally.
type clientResult struct {
	latencies []float64
	statuses  map[int]int
	coalesced int
}

// RunLoad drives the configured clients against the server and blocks
// until the run completes (or ctx cancels it early).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(server.QueryRequest{
		Federation: cfg.Federation,
		Query:      cfg.Query,
		Weights:    cfg.Weights,
		TimeoutMS:  cfg.TimeoutMS,
	})
	if err != nil {
		return nil, err
	}
	url := cfg.BaseURL + "/v1/queries"
	client := &http.Client{
		Timeout: cfg.HTTPTimeout,
		Transport: &http.Transport{
			// A closed-loop generator holds one connection per client.
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
	}

	// Duration bounds the run only in open-ended mode: a fixed-count
	// run (-requests) must complete its count, not be silently cut.
	if cfg.Requests == 0 && cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(res *clientResult) {
			defer wg.Done()
			res.statuses = make(map[int]int)
			for n := 0; cfg.Requests == 0 || n < cfg.Requests; n++ {
				if ctx.Err() != nil {
					return
				}
				began := time.Now()
				status, coalesced := submitOnce(ctx, client, url, body)
				// A shot cut down by the run deadline is not a server
				// error; drop it rather than misreport.
				if status == 0 && ctx.Err() != nil {
					return
				}
				res.statuses[status]++
				if status == http.StatusOK {
					res.latencies = append(res.latencies, float64(time.Since(began))/float64(time.Millisecond))
					if coalesced {
						res.coalesced++
					}
				}
			}
		}(&results[c])
	}
	wg.Wait()
	return summarize(results, cfg.Clients, time.Since(start)), nil
}

// summarize folds the per-client tallies into one report — the
// percentile and rate math of a load run, separated from the HTTP loop
// so it is testable against known inputs.
func summarize(results []clientResult, clients int, elapsed time.Duration) *LoadReport {
	report := &LoadReport{
		Clients:      clients,
		Elapsed:      elapsed,
		StatusCounts: make(map[int]int),
	}
	var all []float64
	for i := range results {
		res := &results[i]
		for status, n := range res.statuses {
			report.StatusCounts[status] += n
			report.Requests += n
			if status != http.StatusOK {
				report.Errors += n
			}
		}
		report.Coalesced += res.coalesced
		all = append(all, res.latencies...)
	}
	if elapsed > 0 {
		report.QPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		if qs, err := stats.Quantiles(all, 0.50, 0.90, 0.99, 1); err == nil {
			report.P50MS, report.P90MS, report.P99MS, report.MaxMS = qs[0], qs[1], qs[2], qs[3]
		}
	}
	return report
}

// submitOnce fires one POST and reports (status, coalesced); status 0
// means the request never produced an HTTP response.
func submitOnce(ctx context.Context, client *http.Client, url string, body []byte) (int, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, false
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return 0, false
	}
	return resp.StatusCode, qr.Coalesced
}
