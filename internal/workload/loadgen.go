package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/stats"
)

// This file extends the evaluation harness with a closed-loop HTTP load
// generator for the midasd serving layer: N concurrent clients each
// submit queries back to back, and the run is summarized as sustained
// QPS plus latency percentiles — the measured number behind the
// ROADMAP's "fast as the hardware allows".

// LoadConfig parameterizes one load-generation run.
type LoadConfig struct {
	// BaseURL of the midasd instance, e.g. "http://localhost:8642".
	BaseURL string
	// Addrs lists every cluster member's base URL. When set, the
	// generator is routing-table aware: it learns each federation's
	// owner from GET /v1/cluster and from 307 redirects, sends requests
	// straight to the owner, and falls back through the other members
	// when a node dies mid-run. Empty means single-node mode on BaseURL.
	Addrs []string
	// RedirectBudget bounds the 307 follows plus transport retries one
	// request may spend before counting as exhausted (default 4).
	RedirectBudget int
	// RetryBackoff is the pause before retrying after a transport error
	// or retryable status (default 50ms).
	RetryBackoff time.Duration
	// Federation and Query name what to submit (Federation may stay
	// empty on a single-tenant server; Query defaults to "Q12").
	Federation string
	Query      string
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Requests caps submissions per client; 0 runs until Duration.
	Requests int
	// Duration bounds the run when Requests is 0 (default 10s).
	Duration time.Duration
	// Weights is the submitted policy (default {1, 1}).
	Weights []float64
	// TimeoutMS rides along on every request body.
	TimeoutMS int64
	// HTTPTimeout caps one HTTP round trip (default 60s).
	HTTPTimeout time.Duration
}

func (c *LoadConfig) setDefaults() error {
	for i, a := range c.Addrs {
		c.Addrs[i] = strings.TrimRight(a, "/")
	}
	if c.BaseURL == "" && len(c.Addrs) > 0 {
		c.BaseURL = c.Addrs[0]
	}
	if c.BaseURL == "" {
		return errors.New("workload: load config needs a BaseURL")
	}
	if c.RedirectBudget == 0 {
		c.RedirectBudget = 4
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.Query == "" {
		c.Query = "Q12"
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Clients < 1 {
		return fmt.Errorf("workload: non-positive client count %d", c.Clients)
	}
	if c.Requests < 0 {
		return fmt.Errorf("workload: negative request count %d", c.Requests)
	}
	if c.Requests == 0 && c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.HTTPTimeout == 0 {
		c.HTTPTimeout = 60 * time.Second
	}
	if len(c.Weights) == 0 {
		c.Weights = []float64{1, 1}
	}
	return nil
}

// LoadReport summarizes one run.
type LoadReport struct {
	Clients  int
	Requests int
	// Errors counts transport failures and non-200 responses; a clean
	// run has zero.
	Errors int
	// Coalesced counts responses served from a shared plan sweep.
	Coalesced int
	Elapsed   time.Duration
	// QPS is completed requests per second of wall time.
	QPS float64
	// Latency percentiles over successful requests, milliseconds.
	P50MS, P90MS, P99MS, MaxMS float64
	// StatusCounts tallies responses by HTTP status (0 = transport
	// error).
	StatusCounts map[int]int
	// Redirects counts 307 ownership redirects followed; Exhausted the
	// requests that ran out of RedirectBudget (each also counted as an
	// error under its final status).
	Redirects int
	Exhausted int
	// Skipped counts schedule events never dispatched because the run
	// was cancelled first (open-loop runs only; always 0 closed-loop).
	Skipped int
	// PerNode breaks successful requests down by the serving cluster
	// member (from QueryResponse.Node; key "server" in standalone mode).
	PerNode map[string]NodeStats
}

// NodeStats is one cluster member's slice of a load run.
type NodeStats struct {
	Requests     int
	QPS          float64
	P50MS, P99MS float64
}

func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d clients, %d requests in %.2fs: %.1f QPS, p50 %.1fms, p90 %.1fms, p99 %.1fms, max %.1fms, %d errors, %d coalesced",
		r.Clients, r.Requests, r.Elapsed.Seconds(), r.QPS,
		r.P50MS, r.P90MS, r.P99MS, r.MaxMS, r.Errors, r.Coalesced)
}

// clientResult is one worker's tally.
type clientResult struct {
	latencies []float64
	statuses  map[int]int
	coalesced int
	perNode   map[string][]float64
	redirects int
	exhausted int
}

// tally records one completed shot. Shared by the closed-loop clients
// and the open-loop slots so both arms feed summarize identically.
func (res *clientResult) tally(shot shotResult, latMS float64) {
	res.statuses[shot.status]++
	res.redirects += shot.redirects
	if shot.exhausted {
		res.exhausted++
	}
	if shot.status == http.StatusOK {
		res.latencies = append(res.latencies, latMS)
		node := shot.node
		if node == "" {
			node = "server"
		}
		res.perNode[node] = append(res.perNode[node], latMS)
		if shot.coalesced {
			res.coalesced++
		}
	}
}

// router directs each request at its federation's current owner. It
// caches the owner address learned from successful responses, 307
// Location headers and GET /v1/cluster, and falls back to round-robin
// over the seed list while no owner is known (or after the cached one
// stopped answering).
type router struct {
	seeds []string
	next  atomic.Uint64
	mu    sync.Mutex
	owner string
}

func newRouter(cfg *LoadConfig) *router {
	seeds := cfg.Addrs
	if len(seeds) == 0 {
		seeds = []string{cfg.BaseURL}
	}
	return &router{seeds: seeds}
}

// target picks the base URL for the next attempt.
func (rt *router) target() string {
	rt.mu.Lock()
	u := rt.owner
	rt.mu.Unlock()
	if u != "" {
		return u
	}
	return rt.seeds[rt.next.Add(1)%uint64(len(rt.seeds))]
}

func (rt *router) setOwner(base string) {
	rt.mu.Lock()
	rt.owner = base
	rt.mu.Unlock()
}

// forget drops the cached owner if it still is base, forcing the next
// attempt back onto the seed rotation.
func (rt *router) forget(base string) {
	rt.mu.Lock()
	if rt.owner == base {
		rt.owner = ""
	}
	rt.mu.Unlock()
}

// refresh re-reads the routing table from any live seed and re-resolves
// the federation's owner. Best-effort: a cluster that is entirely
// unreachable just leaves the cache empty.
func (rt *router) refresh(ctx context.Context, client *http.Client, fed string) {
	for range rt.seeds {
		base := rt.seeds[rt.next.Add(1)%uint64(len(rt.seeds))]
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		var cr server.ClusterResponse
		err = json.NewDecoder(resp.Body).Decode(&cr)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		name := fed
		if name == "" && len(cr.Placements) == 1 {
			for n := range cr.Placements {
				name = n
			}
		}
		p, ok := cr.Placements[name]
		if !ok {
			return
		}
		for _, m := range cr.Members {
			if m.ID == p.Owner {
				rt.setOwner(m.Addr)
				return
			}
		}
		return
	}
}

// RunLoad drives the configured clients against the server and blocks
// until the run completes (or ctx cancels it early).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(server.QueryRequest{
		Federation: cfg.Federation,
		Query:      cfg.Query,
		Weights:    cfg.Weights,
		TimeoutMS:  cfg.TimeoutMS,
	})
	if err != nil {
		return nil, err
	}
	client := &http.Client{
		Timeout: cfg.HTTPTimeout,
		Transport: &http.Transport{
			// A closed-loop generator holds one connection per client.
			MaxIdleConns:        cfg.Clients,
			MaxIdleConnsPerHost: cfg.Clients,
		},
		// 307s are followed by hand so each hop updates the routing
		// cache and spends the request's redirect budget.
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	rt := newRouter(&cfg)
	if len(cfg.Addrs) > 0 {
		// Learn the initial owner so the run starts on target instead of
		// paying a redirect per client.
		rt.refresh(ctx, client, cfg.Federation)
	}

	// Duration bounds the run only in open-ended mode: a fixed-count
	// run (-requests) must complete its count, not be silently cut.
	if cfg.Requests == 0 && cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(res *clientResult) {
			defer wg.Done()
			res.statuses = make(map[int]int)
			res.perNode = make(map[string][]float64)
			for n := 0; cfg.Requests == 0 || n < cfg.Requests; n++ {
				if ctx.Err() != nil {
					return
				}
				began := time.Now()
				shot := submitShot(ctx, client, rt, &cfg, body)
				// A shot cut down by the run deadline is not a server
				// error; drop it rather than misreport.
				if shot.status == 0 && ctx.Err() != nil {
					return
				}
				res.tally(shot, float64(time.Since(began))/float64(time.Millisecond))
			}
		}(&results[c])
	}
	wg.Wait()
	return summarize(results, cfg.Clients, time.Since(start)), nil
}

// summarize folds the per-client tallies into one report — the
// percentile and rate math of a load run, separated from the HTTP loop
// so it is testable against known inputs.
func summarize(results []clientResult, clients int, elapsed time.Duration) *LoadReport {
	report := &LoadReport{
		Clients:      clients,
		Elapsed:      elapsed,
		StatusCounts: make(map[int]int),
		PerNode:      make(map[string]NodeStats),
	}
	var all []float64
	perNode := make(map[string][]float64)
	for i := range results {
		res := &results[i]
		for status, n := range res.statuses {
			report.StatusCounts[status] += n
			report.Requests += n
			if status != http.StatusOK {
				report.Errors += n
			}
		}
		report.Coalesced += res.coalesced
		report.Redirects += res.redirects
		report.Exhausted += res.exhausted
		all = append(all, res.latencies...)
		for node, lats := range res.perNode {
			perNode[node] = append(perNode[node], lats...)
		}
	}
	for node, lats := range perNode {
		ns := NodeStats{Requests: len(lats)}
		if elapsed > 0 {
			ns.QPS = float64(len(lats)) / elapsed.Seconds()
		}
		if qs, err := stats.Quantiles(lats, 0.50, 0.99); err == nil {
			ns.P50MS, ns.P99MS = qs[0], qs[1]
		}
		report.PerNode[node] = ns
	}
	if elapsed > 0 {
		report.QPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		if qs, err := stats.Quantiles(all, 0.50, 0.90, 0.99, 1); err == nil {
			report.P50MS, report.P90MS, report.P99MS, report.MaxMS = qs[0], qs[1], qs[2], qs[3]
		}
	}
	return report
}

// shotResult is the outcome of one logical request, after redirect
// following and retries.
type shotResult struct {
	status    int
	node      string
	coalesced bool
	redirects int
	exhausted bool
}

// submitShot fires one logical request: POST at the routed target,
// follow 307s by hand, retry transport errors and 503s against a
// refreshed routing table — all within cfg.RedirectBudget attempts.
func submitShot(ctx context.Context, client *http.Client, rt *router, cfg *LoadConfig, body []byte) shotResult {
	var out shotResult
	base := rt.target()
	for attempt := 0; ; attempt++ {
		status, node, coalesced, loc := postOnce(ctx, client, base+"/v1/queries", body)
		out.status, out.node, out.coalesced = status, node, coalesced
		retryable := status == http.StatusTemporaryRedirect ||
			status == http.StatusServiceUnavailable || status == 0
		if !retryable {
			if status == http.StatusOK {
				rt.setOwner(base)
			}
			return out
		}
		if attempt >= cfg.RedirectBudget {
			out.exhausted = true
			return out
		}
		switch status {
		case http.StatusTemporaryRedirect:
			// The redirect names the owner directly — no backoff needed.
			next := strings.TrimSuffix(loc, "/v1/queries")
			if next == "" || next == base {
				out.exhausted = true
				return out
			}
			base = next
			rt.setOwner(base)
			out.redirects++
		default:
			// Dead or draining node: drop it from the cache, re-learn the
			// table from the surviving members, back off, try again.
			rt.forget(base)
			select {
			case <-time.After(cfg.RetryBackoff):
			case <-ctx.Done():
				return out
			}
			rt.refresh(ctx, client, cfg.Federation)
			base = rt.target()
		}
	}
}

// postOnce fires one POST and reports (status, node, coalesced,
// location); status 0 means the request never produced an HTTP
// response.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte) (int, string, bool, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", false, ""
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", false, ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, "", false, resp.Header.Get("Location")
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return 0, "", false, ""
	}
	return resp.StatusCode, qr.Node, qr.Coalesced, ""
}
