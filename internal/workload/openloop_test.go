package workload

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// roundTripTrace serializes a schedule to trace bytes and parses it
// back — the record/replay path without the filesystem.
func roundTripTrace(t *testing.T, events []scenario.Event) []scenario.Event {
	t.Helper()
	var buf bytes.Buffer
	if err := scenario.WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	replayed, err := scenario.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return replayed
}

// regroup distributes one flat sample list over n clientResult tallies
// in round-robin order — the shape a closed-loop run with n clients or
// an open-loop run with n slots would produce.
func regroup(samples []float64, statuses []int, n int) []clientResult {
	results := make([]clientResult, n)
	for i := range results {
		results[i].statuses = make(map[int]int)
		results[i].perNode = make(map[string][]float64)
	}
	for i := range samples {
		res := &results[i%n]
		res.tally(shotResult{status: statuses[i], node: "server"}, samples[i])
	}
	return results
}

// The property the open-loop runner leans on: summarize is invariant
// to how samples are grouped into clientResults. A closed-loop run
// groups by client, an open-loop run by in-flight slot — both must
// report identical percentiles, counts and rates.
func TestSummarizeGroupingInvariant(t *testing.T) {
	rng := stats.NewRNG(99)
	const samples = 4097
	lats := make([]float64, samples)
	codes := make([]int, samples)
	for i := range lats {
		lats[i] = rng.LogNormal(1, 0.8)
		codes[i] = http.StatusOK
		if rng.Bernoulli(0.03) {
			codes[i] = http.StatusServiceUnavailable
		}
	}
	elapsed := 3 * time.Second
	base := summarize(regroup(lats, codes, 1), 1, elapsed)
	for _, n := range []int{2, 8, 97, 256, samples} {
		got := summarize(regroup(lats, codes, n), n, elapsed)
		got.Clients = base.Clients // the only field allowed to differ
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("summary changed when regrouping %d samples into %d tallies:\n got %+v\nwant %+v",
				samples, n, got, base)
		}
	}
}

// Closed-loop (8 clients) and open-loop (256 slots) groupings of the
// same latency samples must agree on every percentile — the satellite
// guarantee that there is exactly one percentile implementation.
func TestClosedAndOpenLoopSummariesAgree(t *testing.T) {
	rng := stats.NewRNG(5)
	lats := make([]float64, 1000)
	codes := make([]int, 1000)
	for i := range lats {
		lats[i] = rng.Uniform(0.5, 90)
		codes[i] = http.StatusOK
	}
	elapsed := time.Second
	closed := summarize(regroup(lats, codes, 8), 8, elapsed)
	open := summarize(regroup(lats, codes, 256), 256, elapsed)
	for _, pair := range [][2]float64{
		{closed.P50MS, open.P50MS},
		{closed.P90MS, open.P90MS},
		{closed.P99MS, open.P99MS},
		{closed.MaxMS, open.MaxMS},
		{closed.QPS, open.QPS},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-12 {
			t.Fatalf("closed/open summaries disagree: closed %+v open %+v", closed, open)
		}
	}
	if closed.Requests != open.Requests || closed.Errors != open.Errors {
		t.Fatalf("counts disagree: closed %d/%d open %d/%d",
			closed.Requests, closed.Errors, open.Requests, open.Errors)
	}
}

func TestRunOpenLoadFiresWholeSchedule(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()

	spec := scenario.Spec{Arrival: "bursty", Rate: 2000, Events: 120, Seed: 4}
	events, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOpenLoad(context.Background(), OpenLoadConfig{
		LoadConfig: LoadConfig{BaseURL: ts.URL},
		Events:     events,
		Speed:      10, // compress the schedule; latencies don't change
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(events) || rep.Errors != 0 || rep.Skipped != 0 {
		t.Fatalf("requests/errors/skipped = %d/%d/%d, want %d/0/0",
			rep.Requests, rep.Errors, rep.Skipped, len(events))
	}
	if rep.QPS <= 0 || rep.P50MS <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Coalesced != len(events) {
		t.Fatalf("coalesced = %d, want %d (fake server always coalesces)", rep.Coalesced, len(events))
	}
}

// An open-loop run replayed from trace bytes must fire the same
// schedule the recording wrote.
func TestRunOpenLoadReplaysTrace(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()

	events, err := scenario.Spec{Arrival: "poisson", Rate: 5000, Events: 40, Seed: 8}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	replayed := roundTripTrace(t, events)
	if !reflect.DeepEqual(events, replayed) {
		t.Fatal("trace round trip changed the schedule")
	}
	rep, err := RunOpenLoad(context.Background(), OpenLoadConfig{
		LoadConfig: LoadConfig{BaseURL: ts.URL},
		Events:     replayed,
		Speed:      10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(events) || rep.Errors != 0 {
		t.Fatalf("replayed run: requests/errors = %d/%d, want %d/0", rep.Requests, rep.Errors, len(events))
	}
}

func TestRunOpenLoadValidation(t *testing.T) {
	if _, err := RunOpenLoad(context.Background(), OpenLoadConfig{
		LoadConfig: LoadConfig{BaseURL: "http://localhost:1"},
	}); err == nil {
		t.Fatal("empty schedule must error")
	}
	if _, err := RunOpenLoad(context.Background(), OpenLoadConfig{
		Events: []scenario.Event{{Query: "Q12"}},
	}); err == nil {
		t.Fatal("missing BaseURL must error")
	}
}

func TestRunOpenLoadCancelledContext(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	events, err := scenario.Spec{Arrival: "poisson", Rate: 100, Events: 30, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOpenLoad(ctx, OpenLoadConfig{
		LoadConfig: LoadConfig{BaseURL: ts.URL},
		Events:     events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("cancelled run completed %d requests, want 0", rep.Requests)
	}
}
