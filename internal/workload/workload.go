// Package workload implements the paper's evaluation protocol: generate
// a history of federated query executions under drifting cloud load,
// then measure each cost model's Mean Relative Error (eq. 15) on a
// stream of test queries, with every model reading the *same* history
// and being scored against the *same* measured outcomes.
//
// One realistic twist is built in: the simulated database grows/shrinks
// slightly between executions (medical data accumulates), so the size
// features of the paper's Example 2.1 carry signal rather than being
// constant within an experiment.
package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/stats"
	"repro/internal/tpch"
)

// ErrNoModels is returned when an evaluation is requested without models.
var ErrNoModels = errors.New("workload: no models to evaluate")

// ModelSpec names one cost model under evaluation.
type ModelSpec struct {
	Name  string
	Model ires.CostModel
}

// EvalConfig parameterizes one evaluation run.
type EvalConfig struct {
	Query tpch.QueryID
	// SF is the nominal data scale (0.1 ≈ 100 MiB, 1 ≈ 1 GiB).
	SF float64
	// SFJitter is the relative spread of per-execution data sizes
	// around SF (default 0.3 → ±30%), modelling medical data that
	// accumulates between runs.
	SFJitter float64
	// HistorySize is the number of seed executions (default 60).
	HistorySize int
	// TestQueries is the number of scored predictions (default 40).
	TestQueries int
	// NodeChoices is the cluster-size menu (default 1..16 powers of 2).
	NodeChoices []int
	// RecordBreakdown records per-operator timings alongside the total
	// costs (federation.BreakdownMetrics instead of federation.Metrics),
	// enabling operator-level models such as ires.CompositeDREAMModel.
	// The scored metrics stay (time, money): every model's Estimate
	// must return a vector whose first two entries are those.
	RecordBreakdown bool
	// RecurringPlans restricts the workload to a recurring menu of this
	// many plan configurations (default 3), drawn once per run. This
	// mirrors the paper's evaluation: the same four queries are executed
	// over and over on one deployment, so history and test plans come
	// from the same small configuration set and the estimation signal is
	// data size and load drift, not extrapolation across cluster shapes.
	// Zero or negative uses the full enumerated plan space.
	RecurringPlans int
	// Seed drives plan draws and size jitter.
	Seed int64
}

func (c *EvalConfig) setDefaults() {
	if c.SFJitter == 0 {
		c.SFJitter = 0.3
	}
	if c.HistorySize == 0 {
		c.HistorySize = 60
	}
	if c.TestQueries == 0 {
		c.TestQueries = 40
	}
	if len(c.NodeChoices) == 0 {
		// The paper's evaluation cluster was a fixed 3-node private
		// cloud: its history varies data sizes over a narrow menu of
		// cluster shapes. A wide node range ({1..16}) turns cost into a
		// strongly nonlinear function of the node features, which no
		// MLR window — DREAM's or the baselines' — can extrapolate;
		// the plan-search experiments (Figure 3 / Example 3.1) are
		// where the full configuration space is exercised.
		c.NodeChoices = []int{1, 2, 4}
	}
}

// ModelScore is one model's error profile over the test stream.
type ModelScore struct {
	// TimeMRE and MoneyMRE are the Mean Relative Errors on the two
	// metrics (eq. 15); TimeMRE is what the paper's Tables 3/4 report.
	TimeMRE, MoneyMRE float64
	// Failures counts test queries the model could not score.
	Failures int
}

// EvalResult is the outcome of one evaluation run.
type EvalResult struct {
	Query   tpch.QueryID
	SF      float64
	Scores  map[string]ModelScore
	History *core.History // final history, for inspection
}

// Harness owns the federation, calibration and randomness of an
// evaluation campaign.
type Harness struct {
	Fed *federation.Federation
	Cal *federation.Calibration
}

// NewHarness builds a harness over a default two-site topology,
// calibrating the engine statistics once at a small scale factor.
func NewHarness(seed int64) (*Harness, error) {
	fed, err := federation.DefaultTopology(seed)
	if err != nil {
		return nil, err
	}
	cal, err := federation.Calibrate(fed, 0.004, seed)
	if err != nil {
		return nil, err
	}
	return &Harness{Fed: fed, Cal: cal}, nil
}

// Run executes the evaluation protocol for one query and scores every
// model on the identical test stream.
func (h *Harness) Run(cfg EvalConfig, models []ModelSpec) (*EvalResult, error) {
	if len(models) == 0 {
		return nil, ErrNoModels
	}
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("workload: non-positive SF %v", cfg.SF)
	}
	cfg.setDefaults()
	rng := stats.NewRNG(cfg.Seed)

	plans, err := h.Fed.EnumeratePlans(cfg.Query, cfg.NodeChoices)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("workload: query %v has no plans", cfg.Query)
	}
	recurring := cfg.RecurringPlans
	if recurring == 0 {
		recurring = 3
	}
	if recurring > 0 && recurring < len(plans) {
		menu := make([]federation.Plan, 0, recurring)
		for _, idx := range rng.Perm(len(plans))[:recurring] {
			menu = append(menu, plans[idx])
		}
		plans = menu
	}

	metricSet := federation.Metrics
	if cfg.RecordBreakdown {
		metricSet = federation.BreakdownMetrics
	}
	history, err := core.NewHistory(federation.FeatureDim, metricSet...)
	if err != nil {
		return nil, err
	}
	costsOf := func(out *federation.Outcome) []float64 {
		if cfg.RecordBreakdown {
			return out.BreakdownCosts()
		}
		return out.Costs()
	}

	// execute runs one plan at a jittered size and returns (features,
	// outcome).
	execute := func(p federation.Plan) ([]float64, *federation.Outcome, error) {
		sf := cfg.SF * rng.Uniform(1-cfg.SFJitter, 1+cfg.SFJitter)
		exec, err := federation.NewScaledExecutor(h.Fed, h.Cal, sf)
		if err != nil {
			return nil, nil, err
		}
		x, err := exec.Features(p)
		if err != nil {
			return nil, nil, err
		}
		out, err := exec.Execute(p)
		if err != nil {
			return nil, nil, err
		}
		return x, out, nil
	}

	// Seed phase.
	for i := 0; i < cfg.HistorySize; i++ {
		p := plans[rng.Intn(len(plans))]
		x, out, err := execute(p)
		if err != nil {
			return nil, err
		}
		if err := history.Append(core.Observation{X: x, Costs: costsOf(out)}); err != nil {
			return nil, err
		}
	}

	// Test phase: every model predicts the same plan from the same
	// history before the measured outcome is revealed and appended.
	type tally struct {
		timeActual, timePred   []float64
		moneyActual, moneyPred []float64
		failures               int
	}
	tallies := make(map[string]*tally, len(models))
	for _, m := range models {
		tallies[m.Name] = &tally{}
	}
	for i := 0; i < cfg.TestQueries; i++ {
		p := plans[rng.Intn(len(plans))]
		sf := cfg.SF * rng.Uniform(1-cfg.SFJitter, 1+cfg.SFJitter)
		exec, err := federation.NewScaledExecutor(h.Fed, h.Cal, sf)
		if err != nil {
			return nil, err
		}
		x, err := exec.Features(p)
		if err != nil {
			return nil, err
		}
		preds := make(map[string][]float64, len(models))
		for _, m := range models {
			c, err := m.Model.Estimate(history, x)
			if err != nil {
				tallies[m.Name].failures++
				continue
			}
			preds[m.Name] = c
		}
		out, err := exec.Execute(p)
		if err != nil {
			return nil, err
		}
		actual := costsOf(out)
		for name, c := range preds {
			ta := tallies[name]
			ta.timeActual = append(ta.timeActual, actual[0])
			ta.timePred = append(ta.timePred, c[0])
			ta.moneyActual = append(ta.moneyActual, actual[1])
			ta.moneyPred = append(ta.moneyPred, c[1])
		}
		if err := history.Append(core.Observation{X: x, Costs: actual}); err != nil {
			return nil, err
		}
	}

	res := &EvalResult{
		Query:   cfg.Query,
		SF:      cfg.SF,
		Scores:  make(map[string]ModelScore, len(models)),
		History: history,
	}
	for name, ta := range tallies {
		score := ModelScore{Failures: ta.failures}
		if len(ta.timeActual) > 0 {
			if mre, err := stats.MRE(ta.timeActual, ta.timePred); err == nil {
				score.TimeMRE = mre
			}
			if mre, err := stats.MRE(ta.moneyActual, ta.moneyPred); err == nil {
				score.MoneyMRE = mre
			}
		}
		res.Scores[name] = score
	}
	return res, nil
}

// PaperModels returns the five Modelling configurations of the paper's
// Tables 3 and 4: BML over windows N, 2N, 3N and unbounded, plus DREAM.
// DREAM's window is capped at Mmax = 3·(L+2), following the paper's
// guidance that once R²require = 0.8 is the target, windows much beyond
// N stop paying for themselves ("M > 6 is not recommended" in their
// L = 2 example) — without a cap, a post-jump window can grow into the
// expired region it is meant to avoid.
func PaperModels(seed int64) ([]ModelSpec, error) {
	dream, err := ires.NewDREAMModel(core.Config{
		RequiredR2: core.DefaultRequiredR2,
		MMax:       3 * (federation.FeatureDim + 2),
	})
	if err != nil {
		return nil, err
	}
	return []ModelSpec{
		{Name: "BMLN", Model: &ires.BMLModel{WindowMultiple: 1, Seed: seed}},
		{Name: "BML2N", Model: &ires.BMLModel{WindowMultiple: 2, Seed: seed}},
		{Name: "BML3N", Model: &ires.BMLModel{WindowMultiple: 3, Seed: seed}},
		{Name: "BML", Model: &ires.BMLModel{WindowMultiple: 0, Seed: seed}},
		{Name: "DREAM", Model: dream},
	}, nil
}
