package workload

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/server"
)

// This file adds the open-loop arm of the load generator: instead of N
// clients submitting back to back (closed loop, arrival rate coupled to
// service rate), requests fire at the offsets of a scenario event
// schedule regardless of how fast the server answers — the arrival
// pattern "millions of users" actually present. The schedule comes
// from scenario.Spec.Generate or a recorded trace, so a run is exactly
// replayable. Results fold through the same clientResult tally and
// summarize path as the closed loop: there is one percentile
// implementation, not two.

// OpenLoadConfig parameterizes one open-loop run. The embedded
// LoadConfig supplies the target (BaseURL/Addrs), routing knobs,
// weights and timeouts; its closed-loop fields (Clients, Requests,
// Duration) are ignored. Event fields override Federation/Query per
// event; empty event fields fall back to the LoadConfig values.
type OpenLoadConfig struct {
	LoadConfig
	// Events is the arrival schedule, offsets relative to run start.
	Events []scenario.Event
	// MaxInFlight bounds concurrent requests; an arrival finding every
	// slot busy waits for one, and the wait shows up as schedule lag
	// (default 256).
	MaxInFlight int
	// Speed scales the schedule: 2 fires it twice as fast, 0.5 at half
	// speed (default 1).
	Speed float64
}

// RunOpenLoad fires the event schedule open-loop and blocks until every
// dispatched request completes (or ctx cancels the run).
func RunOpenLoad(ctx context.Context, cfg OpenLoadConfig) (*LoadReport, error) {
	if len(cfg.Events) == 0 {
		return nil, errors.New("workload: open-loop run needs a non-empty event schedule")
	}
	if err := cfg.LoadConfig.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	client := &http.Client{
		Timeout: cfg.HTTPTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	rts := newRouterSet(&cfg.LoadConfig)
	if len(cfg.Addrs) > 0 {
		// Warm the routing cache for every federation in the schedule.
		seen := map[string]bool{}
		for _, ev := range cfg.Events {
			fed := cfg.federationFor(ev)
			if !seen[fed] {
				seen[fed] = true
				rts.get(fed).refresh(ctx, client, fed)
			}
		}
	}

	// One clientResult per in-flight slot: a request tallies into the
	// slot it ran in, and summarize is grouping-invariant (pinned by
	// TestSummarizeGroupingInvariant), so this is just lock-free
	// bookkeeping, not a semantic grouping.
	results := make([]clientResult, cfg.MaxInFlight)
	slots := make(chan int, cfg.MaxInFlight)
	for i := range results {
		results[i].statuses = make(map[int]int)
		results[i].perNode = make(map[string][]float64)
		slots <- i
	}

	bodies := newBodyCache(&cfg)
	var wg sync.WaitGroup
	skipped := 0
	start := time.Now()
dispatch:
	for _, ev := range cfg.Events {
		due := start.Add(time.Duration(float64(ev.Offset) / cfg.Speed))
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				skipped++
				continue
			}
		}
		fed := cfg.federationFor(ev)
		body, err := bodies.get(fed, cfg.queryFor(ev))
		if err != nil {
			return nil, err
		}
		var slot int
		select {
		case slot = <-slots:
		case <-ctx.Done():
			skipped++
			continue dispatch
		}
		wg.Add(1)
		go func(slot int, fed string, body []byte) {
			defer wg.Done()
			defer func() { slots <- slot }()
			res := &results[slot]
			began := time.Now()
			shot := submitShot(ctx, client, rts.get(fed), &cfg.LoadConfig, body)
			if shot.status == 0 && ctx.Err() != nil {
				return
			}
			res.tally(shot, float64(time.Since(began))/float64(time.Millisecond))
		}(slot, fed, body)
	}
	wg.Wait()
	report := summarize(results, cfg.MaxInFlight, time.Since(start))
	report.Skipped = skipped
	return report, nil
}

func (cfg *OpenLoadConfig) federationFor(ev scenario.Event) string {
	if ev.Federation != "" && ev.Federation != "default" {
		return ev.Federation
	}
	if cfg.Federation != "" {
		return cfg.Federation
	}
	if ev.Federation == "default" {
		return ""
	}
	return ev.Federation
}

func (cfg *OpenLoadConfig) queryFor(ev scenario.Event) string {
	if ev.Query != "" {
		return ev.Query
	}
	return cfg.Query
}

// bodyCache memoizes the marshalled request body per (federation,
// query) pair so the dispatcher does not re-marshal at every arrival.
type bodyCache struct {
	cfg *OpenLoadConfig
	mu  sync.Mutex
	m   map[string][]byte
}

func newBodyCache(cfg *OpenLoadConfig) *bodyCache {
	return &bodyCache{cfg: cfg, m: make(map[string][]byte)}
}

func (bc *bodyCache) get(fed, query string) ([]byte, error) {
	key := fed + "\x00" + query
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if b, ok := bc.m[key]; ok {
		return b, nil
	}
	b, err := json.Marshal(server.QueryRequest{
		Federation: fed,
		Query:      query,
		Weights:    bc.cfg.Weights,
		TimeoutMS:  bc.cfg.TimeoutMS,
	})
	if err != nil {
		return nil, err
	}
	bc.m[key] = b
	return b, nil
}

// routerSet keeps one owner-tracking router per federation, so a
// multi-tenant trace replayed against a cluster routes each event to
// its federation's owner.
type routerSet struct {
	cfg *LoadConfig
	mu  sync.Mutex
	m   map[string]*router
}

func newRouterSet(cfg *LoadConfig) *routerSet {
	return &routerSet{cfg: cfg, m: make(map[string]*router)}
}

func (rs *routerSet) get(fed string) *router {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rt, ok := rs.m[fed]
	if !ok {
		rt = newRouter(rs.cfg)
		rs.m[fed] = rt
	}
	return rt
}
