package workload

import (
	"errors"
	"testing"

	"repro/internal/tpch"
)

func newHarness(t *testing.T, seed int64) *Harness {
	t.Helper()
	h, err := NewHarness(seed)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRunValidation(t *testing.T) {
	h := newHarness(t, 1)
	models, err := PaperModels(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(EvalConfig{Query: tpch.QueryQ12, SF: 0.1}, nil); !errors.Is(err, ErrNoModels) {
		t.Errorf("got %v, want ErrNoModels", err)
	}
	if _, err := h.Run(EvalConfig{Query: tpch.QueryQ12, SF: 0}, models); err == nil {
		t.Error("zero SF accepted")
	}
}

func TestPaperModelsComplete(t *testing.T) {
	models, err := PaperModels(7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"BMLN": true, "BML2N": true, "BML3N": true, "BML": true, "DREAM": true}
	if len(models) != len(want) {
		t.Fatalf("got %d models, want %d", len(models), len(want))
	}
	for _, m := range models {
		if !want[m.Name] {
			t.Errorf("unexpected model %q", m.Name)
		}
		if m.Model == nil {
			t.Errorf("model %q is nil", m.Name)
		}
	}
}

func TestRunScoresAllModels(t *testing.T) {
	h := newHarness(t, 2)
	models, err := PaperModels(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(EvalConfig{
		Query:       tpch.QueryQ12,
		SF:          0.05,
		HistorySize: 40,
		TestQueries: 15,
		Seed:        2,
	}, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(models) {
		t.Fatalf("scored %d models, want %d", len(res.Scores), len(models))
	}
	for name, s := range res.Scores {
		if s.Failures > 3 {
			t.Errorf("%s failed on %d test queries", name, s.Failures)
		}
		if s.Failures < 15 && s.TimeMRE <= 0 {
			t.Errorf("%s TimeMRE = %v, want > 0", name, s.TimeMRE)
		}
	}
	// History grew by the test stream.
	if res.History.Len() != 40+15 {
		t.Errorf("final history = %d, want 55", res.History.Len())
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() map[string]ModelScore {
		h := newHarness(t, 3)
		models, err := PaperModels(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Run(EvalConfig{
			Query:       tpch.QueryQ14,
			SF:          0.05,
			HistorySize: 30,
			TestQueries: 10,
			Seed:        3,
		}, models)
		if err != nil {
			t.Fatal(err)
		}
		return res.Scores
	}
	a, b := run(), run()
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("model %s not deterministic: %+v vs %+v", name, a[name], b[name])
		}
	}
}

func TestDREAMCompetitiveOnEveryQuery(t *testing.T) {
	// The paper's headline (Tables 3/4): DREAM has the lowest MRE.
	// At test scale we assert the weaker, stable property that DREAM is
	// never the *worst* model and stays within 2× of the best — the
	// full-strength comparison runs in the benchmark harness.
	if testing.Short() {
		t.Skip("evaluation campaign is slow for -short")
	}
	h := newHarness(t, 4)
	models, err := PaperModels(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range tpch.AllQueries {
		res, err := h.Run(EvalConfig{
			Query:       q,
			SF:          0.1,
			HistorySize: 60,
			TestQueries: 25,
			Seed:        100 + int64(q),
		}, models)
		if err != nil {
			t.Fatal(err)
		}
		dream := res.Scores["DREAM"].TimeMRE
		worst, best := 0.0, 1e18
		for name, s := range res.Scores {
			if s.TimeMRE > worst {
				worst = s.TimeMRE
			}
			if s.TimeMRE < best {
				best = s.TimeMRE
			}
			t.Logf("%v %-6s MRE=%.3f", q, name, s.TimeMRE)
		}
		if dream >= worst && worst > best {
			t.Errorf("%v: DREAM is the worst model (%.3f, range %.3f–%.3f)", q, dream, best, worst)
		}
		if dream > 2*best {
			t.Errorf("%v: DREAM MRE %.3f more than 2× best %.3f", q, dream, best)
		}
	}
}
