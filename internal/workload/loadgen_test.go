package workload

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// fakeMidasd is a minimal stand-in for the daemon: it answers
// /v1/queries like the real server would, without paying for a
// federation build.
func fakeMidasd(t *testing.T, fail *atomic.Bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/queries" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		var req server.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if fail != nil && fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(server.QueryResponse{
			Query:     req.Query,
			Coalesced: true,
			Plan:      server.PlanJSON{Query: req.Query, NodesLeft: 1, NodesRight: 1},
		})
	}))
}

func TestRunLoadCounts(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 20 || rep.Errors != 0 {
		t.Fatalf("requests/errors = %d/%d, want 20/0", rep.Requests, rep.Errors)
	}
	if rep.Coalesced != 20 {
		t.Fatalf("coalesced = %d", rep.Coalesced)
	}
	if rep.QPS <= 0 || rep.P50MS <= 0 || rep.MaxMS < rep.P99MS {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.StatusCounts[http.StatusOK] != 20 {
		t.Fatalf("status counts: %v", rep.StatusCounts)
	}
	if rep.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	ts := fakeMidasd(t, &fail)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Requests: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 6 || rep.StatusCounts[http.StatusInternalServerError] != 6 {
		t.Fatalf("errors = %d, statuses %v", rep.Errors, rep.StatusCounts)
	}
}

func TestRunLoadDurationMode(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("duration mode made no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d (deadline cut-offs must not count)", rep.Errors)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("missing BaseURL should error")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{BaseURL: "http://x", Clients: -1}); err == nil {
		t.Fatal("negative clients should error")
	}
}
