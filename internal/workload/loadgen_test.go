package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// fakeMidasd is a minimal stand-in for the daemon: it answers
// /v1/queries like the real server would, without paying for a
// federation build.
func fakeMidasd(t *testing.T, fail *atomic.Bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/queries" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		var req server.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if fail != nil && fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(server.QueryResponse{
			Query:     req.Query,
			Coalesced: true,
			Plan:      server.PlanJSON{Query: req.Query, NodesLeft: 1, NodesRight: 1},
		})
	}))
}

func TestRunLoadCounts(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 20 || rep.Errors != 0 {
		t.Fatalf("requests/errors = %d/%d, want 20/0", rep.Requests, rep.Errors)
	}
	if rep.Coalesced != 20 {
		t.Fatalf("coalesced = %d", rep.Coalesced)
	}
	if rep.QPS <= 0 || rep.P50MS <= 0 || rep.MaxMS < rep.P99MS {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.StatusCounts[http.StatusOK] != 20 {
		t.Fatalf("status counts: %v", rep.StatusCounts)
	}
	if rep.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	ts := fakeMidasd(t, &fail)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Requests: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 6 || rep.StatusCounts[http.StatusInternalServerError] != 6 {
		t.Fatalf("errors = %d, statuses %v", rep.Errors, rep.StatusCounts)
	}
}

func TestRunLoadDurationMode(t *testing.T) {
	ts := fakeMidasd(t, nil)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("duration mode made no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d (deadline cut-offs must not count)", rep.Errors)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestSummarizePercentileMath pins the report math on known inputs:
// 101 latencies 0..100 ms split across two clients — with linear
// interpolation over n-1 positions the pXX quantile is exactly XX.
func TestSummarizePercentileMath(t *testing.T) {
	var a, b clientResult
	a.statuses = map[int]int{http.StatusOK: 51}
	b.statuses = map[int]int{http.StatusOK: 50}
	for i := 0; i <= 100; i++ {
		if i%2 == 0 {
			a.latencies = append(a.latencies, float64(i))
		} else {
			b.latencies = append(b.latencies, float64(i))
		}
	}
	a.coalesced = 3
	b.coalesced = 4

	rep := summarize([]clientResult{a, b}, 2, 2*time.Second)
	if rep.Requests != 101 || rep.Errors != 0 {
		t.Fatalf("requests %d errors %d, want 101 0", rep.Requests, rep.Errors)
	}
	if rep.Coalesced != 7 {
		t.Fatalf("coalesced %d, want 7", rep.Coalesced)
	}
	if !almost(rep.QPS, 101.0/2) {
		t.Fatalf("QPS %v, want 50.5", rep.QPS)
	}
	for _, tc := range []struct {
		name      string
		got, want float64
	}{
		{"p50", rep.P50MS, 50},
		{"p90", rep.P90MS, 90},
		{"p99", rep.P99MS, 99},
		{"max", rep.MaxMS, 100},
	} {
		if !almost(tc.got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

// TestSummarizeCountsErrorsByStatus: non-200 and transport failures
// count as errors, and QPS counts only successes.
func TestSummarizeCountsErrorsByStatus(t *testing.T) {
	var a clientResult
	a.statuses = map[int]int{
		http.StatusOK:              4,
		http.StatusTooManyRequests: 2,
		http.StatusGatewayTimeout:  1,
		0:                          3, // transport failures
	}
	a.latencies = []float64{1, 2, 3, 4}
	rep := summarize([]clientResult{a}, 1, time.Second)
	if rep.Requests != 10 {
		t.Fatalf("requests %d, want 10", rep.Requests)
	}
	if rep.Errors != 6 {
		t.Fatalf("errors %d, want 6 (non-200 + transport)", rep.Errors)
	}
	if rep.StatusCounts[http.StatusTooManyRequests] != 2 || rep.StatusCounts[0] != 3 {
		t.Fatalf("status counts wrong: %v", rep.StatusCounts)
	}
	if !almost(rep.QPS, 4) {
		t.Fatalf("QPS %v, want 4", rep.QPS)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	rep := summarize(make([]clientResult, 3), 3, time.Second)
	if rep.Requests != 0 || rep.QPS != 0 || rep.P99MS != 0 || rep.MaxMS != 0 {
		t.Fatalf("empty run should report zeros, got %+v", rep)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("missing BaseURL should error")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{BaseURL: "http://x", Clients: -1}); err == nil {
		t.Fatal("negative clients should error")
	}
}

// fakeCluster is two fake midasd nodes: node 0 owns federation "fed"
// and stamps its responses; node 1 answers with a 307 at node 0. Both
// serve /v1/cluster.
func fakeCluster(t *testing.T) (urls [2]string, close0 func()) {
	t.Helper()
	var ts [2]*httptest.Server
	handler := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/v1/cluster":
				_ = json.NewEncoder(w).Encode(server.ClusterResponse{
					Node:  nodeID(i),
					Epoch: 1,
					Members: []cluster.Member{
						{ID: "n0", Addr: ts[0].URL},
						{ID: "n1", Addr: ts[1].URL},
					},
					Placements: map[string]server.ClusterPlacement{
						"fed": {Owner: "n0", Standby: "n1", State: "active"},
					},
				})
			case "/v1/queries":
				if i != 0 {
					w.Header().Set("Location", ts[0].URL+"/v1/queries")
					w.WriteHeader(http.StatusTemporaryRedirect)
					return
				}
				_ = json.NewEncoder(w).Encode(server.QueryResponse{
					Query: "Q12", Node: "n0", Epoch: 1,
				})
			default:
				http.NotFound(w, r)
			}
		}
	}
	ts[0] = httptest.NewServer(handler(0))
	ts[1] = httptest.NewServer(handler(1))
	t.Cleanup(ts[1].Close)
	return [2]string{ts[0].URL, ts[1].URL}, ts[0].Close
}

func nodeID(i int) string { return fmt.Sprintf("n%d", i) }

// TestRunLoadClusterRouting: with the full seed list the generator
// learns the owner up front and every request lands on n0 directly.
func TestRunLoadClusterRouting(t *testing.T) {
	urls, close0 := fakeCluster(t)
	defer close0()

	rep, err := RunLoad(context.Background(), LoadConfig{
		Addrs:      []string{urls[1], urls[0]}, // non-owner listed first
		Federation: "fed",
		Clients:    4,
		Requests:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Exhausted != 0 {
		t.Fatalf("errors=%d exhausted=%d: %v", rep.Errors, rep.Exhausted, rep.StatusCounts)
	}
	if rep.Requests != 20 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if ns := rep.PerNode["n0"]; ns.Requests != 20 || ns.QPS <= 0 {
		t.Fatalf("per-node stats: %+v", rep.PerNode)
	}
	// The table was fetched up front, so nothing needed a redirect.
	if rep.Redirects != 0 {
		t.Fatalf("redirects = %d, want 0 (owner learned from /v1/cluster)", rep.Redirects)
	}
}

// TestRunLoadFollowsRedirects: pointed only at the non-owner, every
// client's first shot bounces once and then sticks to the owner.
func TestRunLoadFollowsRedirects(t *testing.T) {
	urls, close0 := fakeCluster(t)
	defer close0()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  urls[1],
		Clients:  2,
		Requests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Requests != 8 {
		t.Fatalf("errors=%d requests=%d", rep.Errors, rep.Requests)
	}
	if rep.Redirects == 0 {
		t.Fatal("no redirects followed")
	}
	if ns := rep.PerNode["n0"]; ns.Requests != 8 {
		t.Fatalf("per-node stats: %+v", rep.PerNode)
	}
}

// TestRunLoadFailsOverDeadNode: the cached owner dies mid-run; the
// budgeted retry path re-learns the table from the surviving seed.
// Here the survivor still 307s at the dead node, so requests exhaust
// their budget — the report must say so.
func TestRunLoadReportsExhaustion(t *testing.T) {
	urls, close0 := fakeCluster(t)
	close0() // owner is dead from the start

	rep, err := RunLoad(context.Background(), LoadConfig{
		Addrs:          []string{urls[1]},
		Federation:     "fed",
		Clients:        2,
		Requests:       1,
		RedirectBudget: 2,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exhausted != 2 {
		t.Fatalf("exhausted = %d, want 2 (owner dead, redirects loop): %v", rep.Exhausted, rep.StatusCounts)
	}
	if rep.Errors != 2 {
		t.Fatalf("errors = %d, want 2", rep.Errors)
	}
}
