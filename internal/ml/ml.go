// Package ml implements the machine-learning baselines that the IReS
// Modelling module chooses among in the paper's evaluation: Least
// squared regression, Bagging predictors, and a Multilayer Perceptron
// (the WEKA learners named in Section 2.4), plus the "Best ML" (BML)
// selector that "tests many algorithms and the best model with the
// smallest error is selected".
//
// Everything is implemented on the standard library; the learners are
// deterministic given their seeds so experiments reproduce exactly.
package ml

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/regression"
	"repro/internal/stats"
)

// ErrNoSamples is returned when training is requested on no data.
var ErrNoSamples = errors.New("ml: no training samples")

// Predictor is a trained single-metric cost model.
type Predictor interface {
	// Predict returns the estimated cost for feature vector x.
	Predict(x []float64) (float64, error)
	// Name identifies the underlying algorithm (for reports).
	Name() string
}

// Learner trains Predictors from samples.
type Learner interface {
	// Train fits a model on the samples.
	Train(samples []regression.Sample) (Predictor, error)
	// Name identifies the algorithm.
	Name() string
}

// ---------------------------------------------------------------------------
// Least squared regression

// LeastSquares is ordinary least-squares MLR — the same model DREAM
// uses, but trained on whatever window the caller supplies rather than
// a dynamically sized one.
type LeastSquares struct{}

// Name implements Learner.
func (LeastSquares) Name() string { return "least-squares" }

// Train implements Learner.
func (LeastSquares) Train(samples []regression.Sample) (Predictor, error) {
	m, err := regression.Fit(samples, regression.FitOptions{})
	if err != nil {
		return nil, fmt.Errorf("ml: least-squares: %w", err)
	}
	return lsPredictor{m}, nil
}

type lsPredictor struct{ m *regression.Model }

func (p lsPredictor) Predict(x []float64) (float64, error) { return p.m.Predict(x) }
func (p lsPredictor) Name() string                         { return "least-squares" }

// ---------------------------------------------------------------------------
// Bagging predictors (Breiman 1996)

// Bagging trains Bags base models on bootstrap resamples and averages
// their predictions.
type Bagging struct {
	// Base is the learner trained on each bootstrap sample; defaults
	// to LeastSquares.
	Base Learner
	// Bags is the ensemble size; defaults to 10.
	Bags int
	// Seed drives the bootstrap resampling.
	Seed int64
}

// Name implements Learner.
func (b Bagging) Name() string { return "bagging" }

// Train implements Learner.
func (b Bagging) Train(samples []regression.Sample) (Predictor, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	base := b.Base
	if base == nil {
		base = LeastSquares{}
	}
	bags := b.Bags
	if bags <= 0 {
		bags = 10
	}
	rng := stats.NewRNG(b.Seed)
	members := make([]Predictor, 0, bags)
	// A bootstrap draw may be degenerate (e.g. one sample repeated);
	// those members are skipped. Training fails only if every draw is
	// degenerate.
	for i := 0; i < bags; i++ {
		boot := make([]regression.Sample, len(samples))
		for j := range boot {
			boot[j] = samples[rng.Intn(len(samples))]
		}
		m, err := base.Train(boot)
		if err != nil {
			continue
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("ml: bagging: every bootstrap member failed to train")
	}
	return baggingPredictor{members: members}, nil
}

type baggingPredictor struct{ members []Predictor }

func (p baggingPredictor) Name() string { return "bagging" }

func (p baggingPredictor) Predict(x []float64) (float64, error) {
	var s float64
	for _, m := range p.members {
		v, err := m.Predict(x)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s / float64(len(p.members)), nil
}

// ---------------------------------------------------------------------------
// Multilayer Perceptron

// MLP is a single-hidden-layer perceptron with tanh activations and a
// linear output, trained by stochastic gradient descent on z-scored
// inputs and outputs (the standard WEKA-style preprocessing).
type MLP struct {
	// Hidden is the hidden-layer width; defaults to 8.
	Hidden int
	// Epochs is the number of SGD passes; defaults to 200.
	Epochs int
	// LearningRate defaults to 0.01.
	LearningRate float64
	// Seed drives weight initialization and sample shuffling.
	Seed int64
}

// Name implements Learner.
func (MLP) Name() string { return "mlp" }

// Train implements Learner.
func (m MLP) Train(samples []regression.Sample) (Predictor, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	hidden := m.Hidden
	if hidden <= 0 {
		hidden = 8
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := m.LearningRate
	if lr <= 0 {
		lr = 0.01
	}
	dim := len(samples[0].X)
	for _, s := range samples {
		if len(s.X) != dim {
			return nil, regression.ErrDimension
		}
	}

	// z-score normalization of features and response.
	xMean := make([]float64, dim)
	xStd := make([]float64, dim)
	var yAcc stats.Online
	accs := make([]stats.Online, dim)
	for _, s := range samples {
		for j, v := range s.X {
			accs[j].Add(v)
		}
		yAcc.Add(s.C)
	}
	for j := range accs {
		xMean[j] = accs[j].Mean()
		xStd[j] = accs[j].StdDev()
		if xStd[j] == 0 {
			xStd[j] = 1
		}
	}
	yMean, yStd := yAcc.Mean(), yAcc.StdDev()
	if yStd == 0 {
		yStd = 1
	}

	rng := stats.NewRNG(m.Seed)
	p := &mlpPredictor{
		dim: dim, hidden: hidden,
		w1:    make([]float64, hidden*dim),
		b1:    make([]float64, hidden),
		w2:    make([]float64, hidden),
		xMean: xMean, xStd: xStd, yMean: yMean, yStd: yStd,
	}
	// Xavier-style initialization keeps tanh units out of saturation.
	scale1 := math.Sqrt(1.0 / float64(dim))
	for i := range p.w1 {
		p.w1[i] = rng.Normal(0, scale1)
	}
	scale2 := math.Sqrt(1.0 / float64(hidden))
	for i := range p.w2 {
		p.w2[i] = rng.Normal(0, scale2)
	}

	zx := make([]float64, dim)
	hAct := make([]float64, hidden)
	for epoch := 0; epoch < epochs; epoch++ {
		for _, idx := range rng.Perm(len(samples)) {
			s := samples[idx]
			for j := range zx {
				zx[j] = (s.X[j] - xMean[j]) / xStd[j]
			}
			zy := (s.C - yMean) / yStd

			// Forward pass.
			out := p.b2
			for hI := 0; hI < hidden; hI++ {
				a := p.b1[hI]
				row := p.w1[hI*dim : (hI+1)*dim]
				for j, v := range zx {
					a += row[j] * v
				}
				hAct[hI] = math.Tanh(a)
				out += p.w2[hI] * hAct[hI]
			}

			// Backward pass (squared error).
			dOut := out - zy
			p.b2 -= lr * dOut
			for hI := 0; hI < hidden; hI++ {
				dW2 := dOut * hAct[hI]
				dH := dOut * p.w2[hI] * (1 - hAct[hI]*hAct[hI])
				p.w2[hI] -= lr * dW2
				p.b1[hI] -= lr * dH
				row := p.w1[hI*dim : (hI+1)*dim]
				for j, v := range zx {
					row[j] -= lr * dH * v
				}
			}
		}
	}
	return p, nil
}

type mlpPredictor struct {
	dim, hidden int
	w1          []float64 // hidden×dim, row-major
	b1          []float64
	w2          []float64
	b2          float64
	xMean, xStd []float64
	yMean, yStd float64
}

func (p *mlpPredictor) Name() string { return "mlp" }

func (p *mlpPredictor) Predict(x []float64) (float64, error) {
	if len(x) != p.dim {
		return 0, regression.ErrDimension
	}
	out := p.b2
	for hI := 0; hI < p.hidden; hI++ {
		a := p.b1[hI]
		row := p.w1[hI*p.dim : (hI+1)*p.dim]
		for j, v := range x {
			a += row[j] * (v - p.xMean[j]) / p.xStd[j]
		}
		out += p.w2[hI] * math.Tanh(a)
	}
	return out*p.yStd + p.yMean, nil
}
