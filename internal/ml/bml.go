package ml

import (
	"fmt"
	"math"

	"repro/internal/regression"
)

// BML reproduces the IReS Modelling module's model-building process:
// "IReS tests many algorithms and the best model with the smallest
// error is selected." Candidates are evaluated by k-fold cross
// validation on the training window; the winner is retrained on the
// full window.
type BML struct {
	// Candidates defaults to {LeastSquares, Bagging, MLP}.
	Candidates []Learner
	// Folds for cross validation; defaults to 3 and degrades to
	// leave-one-out when the window is smaller than the fold count.
	Folds int
	// Seed feeds the stochastic candidates when the default set is used.
	Seed int64
}

// Name implements Learner.
func (BML) Name() string { return "bml" }

// DefaultCandidates returns the three learners the paper names.
func DefaultCandidates(seed int64) []Learner {
	return []Learner{
		LeastSquares{},
		Bagging{Bags: 10, Seed: seed},
		MLP{Hidden: 8, Epochs: 150, Seed: seed},
	}
}

// Selection reports which candidate BML picked and why.
type Selection struct {
	Chosen  string
	CVError map[string]float64 // per-candidate cross-validation MRE proxy
}

// Train implements Learner: it cross-validates each candidate and
// returns the winner retrained on the full window.
func (b BML) Train(samples []regression.Sample) (Predictor, error) {
	p, _, err := b.TrainSelect(samples)
	return p, err
}

// TrainSelect is Train plus the selection diagnostics.
func (b BML) TrainSelect(samples []regression.Sample) (Predictor, *Selection, error) {
	if len(samples) == 0 {
		return nil, nil, ErrNoSamples
	}
	cands := b.Candidates
	if len(cands) == 0 {
		cands = DefaultCandidates(b.Seed)
	}
	folds := b.Folds
	if folds <= 0 {
		folds = 3
	}
	if folds > len(samples) {
		folds = len(samples)
	}

	sel := &Selection{CVError: make(map[string]float64, len(cands))}
	bestErr := math.Inf(1)
	var best Learner
	for _, cand := range cands {
		cvErr, ok := crossValidate(cand, samples, folds)
		if !ok {
			sel.CVError[cand.Name()] = math.Inf(1)
			continue
		}
		sel.CVError[cand.Name()] = cvErr
		if cvErr < bestErr {
			bestErr, best = cvErr, cand
		}
	}
	if best == nil {
		// No candidate survived cross validation (window too small to
		// split). Fall back to training each candidate on the full
		// window and keep the first that fits.
		for _, cand := range cands {
			p, err := cand.Train(samples)
			if err == nil {
				sel.Chosen = cand.Name()
				return p, sel, nil
			}
		}
		return nil, nil, fmt.Errorf("ml: bml: no candidate could train on %d samples", len(samples))
	}
	sel.Chosen = best.Name()
	p, err := best.Train(samples)
	if err != nil {
		return nil, nil, fmt.Errorf("ml: bml: winner %q failed on full window: %w", best.Name(), err)
	}
	return p, sel, nil
}

// crossValidate returns the mean absolute relative error of cand across
// k folds. ok is false when no fold could be evaluated (e.g. the
// training split is below the learner's minimum size).
func crossValidate(cand Learner, samples []regression.Sample, folds int) (float64, bool) {
	var errSum float64
	var n int
	for f := 0; f < folds; f++ {
		train, test := foldSplit(samples, folds, f)
		if len(test) == 0 {
			continue
		}
		p, err := cand.Train(train)
		if err != nil {
			continue
		}
		for _, s := range test {
			pred, err := p.Predict(s.X)
			if err != nil {
				continue
			}
			denom := math.Abs(s.C)
			if denom < 1e-12 {
				denom = 1e-12
			}
			errSum += math.Abs(pred-s.C) / denom
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return errSum / float64(n), true
}

// foldSplit deals samples into train/test for fold f of k using a
// deterministic round-robin so time-ordered windows contribute both old
// and new observations to every fold.
func foldSplit(samples []regression.Sample, k, f int) (train, test []regression.Sample) {
	train = make([]regression.Sample, 0, len(samples))
	test = make([]regression.Sample, 0, len(samples)/k+1)
	for i, s := range samples {
		if i%k == f {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	return train, test
}
