package ml

import (
	"errors"
	"math"
	"testing"

	"repro/internal/regression"
	"repro/internal/stats"
)

// linearSamples generates n samples of c = 2 + 3x₁ − x₂ + N(0, noise).
func linearSamples(seed int64, n int, noise float64) []regression.Sample {
	rng := stats.NewRNG(seed)
	out := make([]regression.Sample, n)
	for i := range out {
		x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
		out[i] = regression.Sample{
			X: []float64{x1, x2},
			C: 2 + 3*x1 - x2 + rng.Normal(0, noise),
		}
	}
	return out
}

func predictErr(t *testing.T, p Predictor, samples []regression.Sample) float64 {
	t.Helper()
	actual := make([]float64, len(samples))
	pred := make([]float64, len(samples))
	for i, s := range samples {
		actual[i] = s.C
		v, err := p.Predict(s.X)
		if err != nil {
			t.Fatal(err)
		}
		pred[i] = v
	}
	mre, err := stats.MRE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	return mre
}

func TestLeastSquaresLearnsLinear(t *testing.T) {
	train := linearSamples(1, 50, 0.1)
	test := linearSamples(2, 50, 0.1)
	p, err := LeastSquares{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "least-squares" {
		t.Errorf("Name = %q", p.Name())
	}
	if mre := predictErr(t, p, test); mre > 0.05 {
		t.Errorf("least-squares MRE = %v, want < 0.05", mre)
	}
}

func TestLeastSquaresTooFew(t *testing.T) {
	if _, err := (LeastSquares{}).Train(linearSamples(1, 2, 0)); err == nil {
		t.Error("trained on 2 samples for 2 features")
	}
}

func TestBaggingLearnsLinear(t *testing.T) {
	train := linearSamples(3, 60, 1)
	test := linearSamples(4, 60, 0)
	p, err := Bagging{Bags: 15, Seed: 1}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "bagging" {
		t.Errorf("Name = %q", p.Name())
	}
	if mre := predictErr(t, p, test); mre > 0.15 {
		t.Errorf("bagging MRE = %v, want < 0.15", mre)
	}
}

func TestBaggingDefaultsAndEmpty(t *testing.T) {
	if _, err := (Bagging{}).Train(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("got %v, want ErrNoSamples", err)
	}
	// Defaults (nil base, 0 bags) must work.
	p, err := Bagging{Seed: 2}.Train(linearSamples(5, 30, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestBaggingReducesVariance(t *testing.T) {
	// Across many noisy resamples of the same generating process, the
	// spread of bagged predictions at a fixed point should not exceed
	// the spread of single-model predictions.
	var single, bagged stats.Online
	x := []float64{5, 5}
	for trial := 0; trial < 30; trial++ {
		train := linearSamples(int64(100+trial), 12, 8)
		ls, err := LeastSquares{}.Train(train)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := Bagging{Bags: 20, Seed: int64(trial)}.Train(train)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := ls.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := bg.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		single.Add(v1)
		bagged.Add(v2)
	}
	if bagged.Variance() > single.Variance()*1.5 {
		t.Errorf("bagging variance %v far exceeds single-model variance %v",
			bagged.Variance(), single.Variance())
	}
}

func TestMLPLearnsLinear(t *testing.T) {
	train := linearSamples(6, 200, 0.5)
	test := linearSamples(7, 100, 0)
	p, err := MLP{Hidden: 8, Epochs: 300, LearningRate: 0.02, Seed: 3}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "mlp" {
		t.Errorf("Name = %q", p.Name())
	}
	if mre := predictErr(t, p, test); mre > 0.2 {
		t.Errorf("mlp MRE = %v, want < 0.2", mre)
	}
}

func TestMLPLearnsNonlinear(t *testing.T) {
	// c = x² — linear models cannot fit this; the MLP should do clearly
	// better than least squares on in-range data.
	rng := stats.NewRNG(8)
	train := make([]regression.Sample, 300)
	for i := range train {
		x := rng.Uniform(-3, 3)
		train[i] = regression.Sample{X: []float64{x}, C: x * x}
	}
	test := make([]regression.Sample, 100)
	for i := range test {
		x := rng.Uniform(-2.5, 2.5)
		test[i] = regression.Sample{X: []float64{x}, C: x * x}
	}
	mlp, err := MLP{Hidden: 16, Epochs: 500, LearningRate: 0.02, Seed: 4}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LeastSquares{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	var mlpSSE, lsSSE float64
	for _, s := range test {
		mv, err := mlp.Predict(s.X)
		if err != nil {
			t.Fatal(err)
		}
		lv, err := ls.Predict(s.X)
		if err != nil {
			t.Fatal(err)
		}
		mlpSSE += (mv - s.C) * (mv - s.C)
		lsSSE += (lv - s.C) * (lv - s.C)
	}
	if mlpSSE >= lsSSE {
		t.Errorf("MLP SSE %v not better than least-squares SSE %v on x²", mlpSSE, lsSSE)
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := (MLP{}).Train(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("got %v, want ErrNoSamples", err)
	}
	bad := []regression.Sample{{X: []float64{1}, C: 1}, {X: []float64{1, 2}, C: 1}}
	if _, err := (MLP{}).Train(bad); !errors.Is(err, regression.ErrDimension) {
		t.Errorf("got %v, want ErrDimension", err)
	}
	p, err := MLP{Seed: 1}.Train(linearSamples(9, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1}); !errors.Is(err, regression.ErrDimension) {
		t.Errorf("predict wrong dim: got %v, want ErrDimension", err)
	}
}

func TestMLPDeterministic(t *testing.T) {
	train := linearSamples(10, 40, 1)
	p1, err := MLP{Seed: 7}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := MLP{Seed: 7}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := p1.Predict([]float64{3, 3})
	v2, _ := p2.Predict([]float64{3, 3})
	if v1 != v2 {
		t.Errorf("same-seed MLPs disagree: %v vs %v", v1, v2)
	}
}

func TestBMLSelectsLinearFamilyOnLinearData(t *testing.T) {
	// Least squares and bagged least squares are near-equivalent on
	// clean linear data; either may win by a hair, but the MLP must not.
	train := linearSamples(11, 60, 0.2)
	p, sel, err := BML{Seed: 1}.TrainSelect(train)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Chosen == "mlp" {
		t.Errorf("BML chose mlp on clean linear data (cv errors %v)", sel.CVError)
	}
	if p.Name() != sel.Chosen {
		t.Errorf("predictor %q does not match selection %q", p.Name(), sel.Chosen)
	}
	if len(sel.CVError) != 3 {
		t.Errorf("CVError has %d entries, want 3", len(sel.CVError))
	}
}

func TestBMLPicksSmallestCVError(t *testing.T) {
	train := linearSamples(12, 50, 1)
	_, sel, err := BML{Seed: 2}.TrainSelect(train)
	if err != nil {
		t.Fatal(err)
	}
	chosenErr := sel.CVError[sel.Chosen]
	for name, e := range sel.CVError {
		if e < chosenErr {
			t.Errorf("candidate %q has smaller CV error (%v) than chosen %q (%v)",
				name, e, sel.Chosen, chosenErr)
		}
	}
}

func TestBMLTinyWindowFallback(t *testing.T) {
	// 4 samples with 2 features: CV splits drop below L+2 so candidates
	// fail per-fold; the fallback must still produce a model.
	train := linearSamples(13, 4, 0)
	p, err := BML{Seed: 3}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) {
		t.Error("fallback model predicts NaN")
	}
}

func TestBMLEmpty(t *testing.T) {
	if _, err := (BML{}).Train(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("got %v, want ErrNoSamples", err)
	}
}

func TestBMLName(t *testing.T) {
	if (BML{}).Name() != "bml" {
		t.Error("BML name wrong")
	}
}

func TestFoldSplitPartition(t *testing.T) {
	samples := linearSamples(14, 17, 0)
	const k = 3
	seen := 0
	for f := 0; f < k; f++ {
		train, test := foldSplit(samples, k, f)
		if len(train)+len(test) != len(samples) {
			t.Fatalf("fold %d loses samples: %d + %d != %d", f, len(train), len(test), len(samples))
		}
		seen += len(test)
	}
	if seen != len(samples) {
		t.Errorf("test folds cover %d samples, want %d", seen, len(samples))
	}
}

func TestCrossValidateDegenerate(t *testing.T) {
	if _, ok := crossValidate(LeastSquares{}, linearSamples(15, 2, 0), 2); ok {
		t.Error("crossValidate reported success on impossible splits")
	}
}
