package ml

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/regression"
)

// Huber is an iteratively-reweighted least-squares (IRLS) robust
// regressor with the Huber loss. The paper's reference for "Least
// squared regression" is Rousseeuw & Leroy's *Robust regression and
// outlier detection*; this learner is the natural robust member of the
// Modelling candidate set: latency spikes (stragglers, co-tenant bursts)
// are outliers that plain OLS chases and Huber down-weights.
type Huber struct {
	// Delta is the Huber threshold in units of the residual scale
	// (MAD); residuals beyond Delta·scale get down-weighted. Default
	// 1.345 (95% Gaussian efficiency).
	Delta float64
	// MaxIterations bounds the IRLS loop; default 30.
	MaxIterations int
	// Tolerance stops iteration when coefficients move less than this
	// (relative); default 1e-8.
	Tolerance float64
}

// Name implements Learner.
func (Huber) Name() string { return "huber" }

// Train implements Learner.
func (h Huber) Train(samples []regression.Sample) (Predictor, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	delta := h.Delta
	if delta <= 0 {
		delta = 1.345
	}
	maxIter := h.MaxIterations
	if maxIter <= 0 {
		maxIter = 30
	}
	tol := h.Tolerance
	if tol <= 0 {
		tol = 1e-8
	}
	dim := len(samples[0].X)
	if len(samples) < regression.MinObservations(dim) {
		return nil, fmt.Errorf("ml: huber: %w", regression.ErrTooFewObservations)
	}
	for i, s := range samples {
		if len(s.X) != dim {
			return nil, fmt.Errorf("ml: huber: sample %d: %w", i, regression.ErrDimension)
		}
	}

	// Design matrix with intercept column and response vector.
	a := linalg.New(len(samples), dim+1)
	c := make([]float64, len(samples))
	for i, s := range samples {
		a.Set(i, 0, 1)
		for j, v := range s.X {
			a.Set(i, j+1, v)
		}
		c[i] = s.C
	}

	// Initialize with unit weights (= OLS).
	weightsVec := make([]float64, len(samples))
	for i := range weightsVec {
		weightsVec[i] = 1
	}
	beta, err := solveWLS(a, c, weightsVec)
	if err != nil {
		return nil, fmt.Errorf("ml: huber: initial fit: %w", err)
	}

	residuals := make([]float64, len(samples))
	for iter := 0; iter < maxIter; iter++ {
		fitted, err := a.MulVec(beta)
		if err != nil {
			return nil, err
		}
		for i := range residuals {
			residuals[i] = c[i] - fitted[i]
		}
		scale := madScale(residuals)
		if scale < 1e-12 {
			break // (near-)exact fit: nothing to robustify
		}
		for i, r := range residuals {
			if ar := math.Abs(r); ar > delta*scale {
				weightsVec[i] = delta * scale / ar
			} else {
				weightsVec[i] = 1
			}
		}
		newBeta, err := solveWLS(a, c, weightsVec)
		if err != nil {
			return nil, fmt.Errorf("ml: huber: reweighted fit: %w", err)
		}
		var change, magnitude float64
		for j := range beta {
			change += math.Abs(newBeta[j] - beta[j])
			magnitude += math.Abs(beta[j])
		}
		beta = newBeta
		if magnitude > 0 && change/magnitude < tol {
			break
		}
	}
	return huberPredictor{beta: beta, dim: dim}, nil
}

// solveWLS solves the weighted normal equations (AᵀWA)β = AᵀWc with a
// tiny ridge retry on singular systems (mirroring regression.Fit).
func solveWLS(a *linalg.Matrix, c, w []float64) ([]float64, error) {
	n, p := a.Rows(), a.Cols()
	wa := linalg.New(n, p)
	wc := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			wa.Set(i, j, a.At(i, j)*w[i])
		}
		wc[i] = c[i] * w[i]
	}
	at := a.T()
	ata, err := at.Mul(wa)
	if err != nil {
		return nil, err
	}
	atc, err := at.MulVec(wc)
	if err != nil {
		return nil, err
	}
	beta, err := ata.SolveVec(atc)
	if errors.Is(err, linalg.ErrSingular) {
		reg, derr := ata.AddDiagonal(1e-8)
		if derr != nil {
			return nil, derr
		}
		beta, err = reg.SolveVec(atc)
	}
	return beta, err
}

type huberPredictor struct {
	beta []float64
	dim  int
}

func (p huberPredictor) Name() string { return "huber" }

func (p huberPredictor) Predict(x []float64) (float64, error) {
	if len(x) != p.dim {
		return 0, regression.ErrDimension
	}
	c := p.beta[0]
	for i, v := range x {
		c += p.beta[i+1] * v
	}
	return c, nil
}

// madScale estimates the residual scale as 1.4826 × the median absolute
// deviation, the standard robust sigma estimate.
func madScale(residuals []float64) float64 {
	abs := make([]float64, len(residuals))
	for i, r := range residuals {
		abs[i] = math.Abs(r)
	}
	return 1.4826 * median(abs)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	// Insertion sort: residual vectors here are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return 0.5 * (s[mid-1] + s[mid])
}
