package ml

import (
	"errors"
	"math"
	"testing"

	"repro/internal/regression"
	"repro/internal/stats"
)

func TestHuberMatchesOLSOnCleanData(t *testing.T) {
	train := linearSamples(20, 60, 0.3)
	hub, err := Huber{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if hub.Name() != "huber" {
		t.Errorf("Name = %q", hub.Name())
	}
	ols, err := LeastSquares{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Without outliers the two should agree closely.
	for _, x := range [][]float64{{1, 1}, {5, 2}, {9, 9}} {
		hv, err := hub.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		ov, err := ols.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hv-ov) > 0.5 {
			t.Errorf("clean data: huber %v vs ols %v at %v", hv, ov, x)
		}
	}
}

func TestHuberResistsOutliers(t *testing.T) {
	// True model c = 2 + 3x₁ − x₂; 10% of points are wild stragglers.
	rng := stats.NewRNG(21)
	train := make([]regression.Sample, 80)
	for i := range train {
		x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
		c := 2 + 3*x1 - x2 + rng.Normal(0, 0.3)
		if i%10 == 0 {
			c += 200 // latency spike
		}
		train[i] = regression.Sample{X: []float64{x1, x2}, C: c}
	}
	hub, err := Huber{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := LeastSquares{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Compare prediction error against the clean function.
	var hubErr, olsErr float64
	for i := 0; i < 50; i++ {
		x1, x2 := rng.Uniform(0, 10), rng.Uniform(0, 10)
		truth := 2 + 3*x1 - x2
		hv, err := hub.Predict([]float64{x1, x2})
		if err != nil {
			t.Fatal(err)
		}
		ov, err := ols.Predict([]float64{x1, x2})
		if err != nil {
			t.Fatal(err)
		}
		hubErr += math.Abs(hv - truth)
		olsErr += math.Abs(ov - truth)
	}
	if hubErr >= olsErr {
		t.Errorf("huber error %v not better than OLS %v under 10%% outliers", hubErr, olsErr)
	}
	// And decisively so: OLS absorbs the +200 spikes into its intercept.
	if hubErr > olsErr/2 {
		t.Logf("huber %v vs ols %v (weak margin)", hubErr, olsErr)
	}
}

func TestHuberValidation(t *testing.T) {
	if _, err := (Huber{}).Train(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("got %v, want ErrNoSamples", err)
	}
	// Too few samples propagate the regression error.
	if _, err := (Huber{}).Train(linearSamples(1, 2, 0)); err == nil {
		t.Error("trained on 2 samples for 2 features")
	}
	p, err := Huber{}.Train(linearSamples(2, 30, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1}); !errors.Is(err, regression.ErrDimension) {
		t.Errorf("predict wrong dim: got %v, want ErrDimension", err)
	}
}

func TestHuberExactFitEarlyStop(t *testing.T) {
	// Noise-free data: the MAD scale collapses and the loop must exit.
	var train []regression.Sample
	rng := stats.NewRNG(3)
	for i := 0; i < 20; i++ {
		x := rng.Uniform(0, 10)
		train = append(train, regression.Sample{X: []float64{x}, C: 1 + 2*x})
	}
	p, err := Huber{}.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Predict([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-9) > 1e-6 {
		t.Errorf("exact-fit prediction = %v, want 9", v)
	}
}

func TestHuberInBMLCandidateSet(t *testing.T) {
	// BML with Huber added must still select sensibly.
	cands := append(DefaultCandidates(1), Huber{})
	train := linearSamples(4, 50, 0.5)
	p, sel, err := BML{Candidates: cands}.TrainSelect(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.CVError) != 4 {
		t.Errorf("CV scored %d candidates, want 4", len(sel.CVError))
	}
	if _, err := p.Predict([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %v", m)
	}
	s := madScale([]float64{-1, 0, 1, 2, -2})
	if s <= 0 {
		t.Errorf("madScale = %v", s)
	}
}
