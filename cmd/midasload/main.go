// Command midasload drives a running midasd with N concurrent
// closed-loop clients and reports sustained QPS plus latency
// percentiles — the regression-gated "how fast is serving really"
// number.
//
// Usage:
//
//	midasload -addr http://localhost:8642 -clients 200 -duration 10s
//	midasload -addr http://localhost:8642 -clients 50 -requests 20 -query Q13
//
// The run fails (exit 1) when any request errors, so a smoke run
// doubles as a correctness gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "midasload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "http://localhost:8642", "midasd base URL")
		federation = flag.String("federation", "", "federation name (empty on a single-tenant server)")
		query      = flag.String("query", "Q12", "query to submit")
		clients    = flag.Int("clients", 50, "concurrent clients")
		requests   = flag.Int("requests", 0, "requests per client (0 = run for -duration)")
		duration   = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		weights    = flag.String("weights", "1,1", "policy weights, comma-separated")
		timeoutMS  = flag.Int64("timeout-ms", 0, "per-request server budget (0 = server default)")
		allowErrs  = flag.Bool("allow-errors", false, "exit 0 even when requests failed")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	w, err := parseFloats(*weights)
	if err != nil {
		return fmt.Errorf("bad -weights: %w", err)
	}

	rep, err := workload.RunLoad(context.Background(), workload.LoadConfig{
		BaseURL:    strings.TrimRight(*addr, "/"),
		Federation: *federation,
		Query:      *query,
		Clients:    *clients,
		Requests:   *requests,
		Duration:   *duration,
		Weights:    w,
		TimeoutMS:  *timeoutMS,
	})
	if err != nil {
		return err
	}

	fmt.Println(rep)
	statuses := make([]int, 0, len(rep.StatusCounts))
	for s := range rep.StatusCounts {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		label := "transport error"
		if s != 0 {
			label = fmt.Sprintf("HTTP %d %s", s, http.StatusText(s))
		}
		fmt.Printf("  %-28s %d\n", label, rep.StatusCounts[s])
	}
	if rep.Errors > 0 && !*allowErrs {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
