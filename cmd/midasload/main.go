// Command midasload drives a running midasd and reports sustained QPS
// plus latency percentiles — the regression-gated "how fast is serving
// really" number.
//
// Two modes. The default is closed loop: N clients submitting back to
// back, arrival rate coupled to service rate. With -arrival the run is
// open loop: requests fire at the offsets of a seeded arrival-process
// schedule (poisson, bursty, diurnal) regardless of how fast the server
// answers. -record writes the schedule to a CRC-framed trace file;
// -replay fires a previously recorded trace, byte-exactly, including
// against a cluster (comma-separated -addr).
//
// Usage:
//
//	midasload -addr http://localhost:8642 -clients 200 -duration 10s
//	midasload -addr http://localhost:8642 -clients 50 -requests 20 -query Q13
//	midasload -addr http://localhost:8642 -arrival bursty -rate 80 -events 1000 -seed 7
//	midasload -addr http://localhost:8642 -arrival poisson -record run.trace
//	midasload -addr http://localhost:8642 -replay run.trace
//
// The run fails (exit 1) when any request errors, so a smoke run
// doubles as a correctness gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "midasload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "http://localhost:8642", "midasd base URL, or comma-separated cluster member URLs")
		federation = flag.String("federation", "", "federation name (empty on a single-tenant server)")
		query      = flag.String("query", "Q12", "query to submit")
		clients    = flag.Int("clients", 50, "concurrent clients")
		requests   = flag.Int("requests", 0, "requests per client (0 = run for -duration)")
		duration   = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		weights    = flag.String("weights", "1,1", "policy weights, comma-separated")
		timeoutMS  = flag.Int64("timeout-ms", 0, "per-request server budget (0 = server default)")
		allowErrs  = flag.Bool("allow-errors", false, "exit 0 even when requests failed")
		redirects  = flag.Int("redirect-budget", 4, "307 follows + retries each request may spend")
		backoff    = flag.Duration("retry-backoff", 50*time.Millisecond, "pause before retrying a dead node")

		arrival  = flag.String("arrival", "", "open-loop arrival process: "+strings.Join(scenario.ArrivalKinds(), ", ")+" (empty = closed loop)")
		rate     = flag.Float64("rate", 50, "open-loop mean arrival rate, events/second")
		events   = flag.Int("events", 500, "open-loop schedule length")
		seed     = flag.Int64("seed", 42, "open-loop schedule seed")
		record   = flag.String("record", "", "write the generated schedule to this trace file (implies open loop)")
		replay   = flag.String("replay", "", "fire the schedule recorded in this trace file instead of generating one")
		inflight = flag.Int("max-inflight", 0, "open-loop concurrent request cap (0 = default 256)")
		speed    = flag.Float64("speed", 1, "open-loop schedule time scale: 2 fires it twice as fast")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	w, err := parseFloats(*weights)
	if err != nil {
		return fmt.Errorf("bad -weights: %w", err)
	}

	cfg := workload.LoadConfig{
		Federation:     *federation,
		Query:          *query,
		Clients:        *clients,
		Requests:       *requests,
		Duration:       *duration,
		Weights:        w,
		TimeoutMS:      *timeoutMS,
		RedirectBudget: *redirects,
		RetryBackoff:   *backoff,
	}
	if addrs := strings.Split(*addr, ","); len(addrs) > 1 {
		cfg.Addrs = addrs
	} else {
		cfg.BaseURL = strings.TrimRight(*addr, "/")
	}

	var rep *workload.LoadReport
	switch {
	case *replay != "":
		if *arrival != "" || *record != "" {
			return fmt.Errorf("-replay is exclusive with -arrival and -record")
		}
		schedule, err := readTrace(*replay)
		if err != nil {
			return err
		}
		fmt.Printf("replaying %d events from %s\n", len(schedule), *replay)
		rep, err = workload.RunOpenLoad(context.Background(), workload.OpenLoadConfig{
			LoadConfig: cfg, Events: schedule, MaxInFlight: *inflight, Speed: *speed,
		})
		if err != nil {
			return err
		}
	case *arrival != "" || *record != "":
		spec := scenario.Spec{
			Arrival:    *arrival,
			Rate:       *rate,
			Events:     *events,
			Seed:       *seed,
			Federation: *federation,
			Queries:    []string{*query},
		}
		schedule, err := spec.Generate()
		if err != nil {
			return err
		}
		if *record != "" {
			if err := writeTrace(*record, schedule); err != nil {
				return err
			}
			fmt.Printf("recorded %d events to %s\n", len(schedule), *record)
		}
		rep, err = workload.RunOpenLoad(context.Background(), workload.OpenLoadConfig{
			LoadConfig: cfg, Events: schedule, MaxInFlight: *inflight, Speed: *speed,
		})
		if err != nil {
			return err
		}
	default:
		rep, err = workload.RunLoad(context.Background(), cfg)
		if err != nil {
			return err
		}
	}

	fmt.Println(rep)
	if rep.Skipped > 0 {
		fmt.Printf("  events skipped (cancelled)   %d\n", rep.Skipped)
	}
	statuses := make([]int, 0, len(rep.StatusCounts))
	for s := range rep.StatusCounts {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		label := "transport error"
		if s != 0 {
			label = fmt.Sprintf("HTTP %d %s", s, http.StatusText(s))
		}
		fmt.Printf("  %-28s %d\n", label, rep.StatusCounts[s])
	}
	if len(rep.PerNode) > 1 || rep.Redirects > 0 {
		nodes := make([]string, 0, len(rep.PerNode))
		for n := range rep.PerNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			ns := rep.PerNode[n]
			fmt.Printf("  node %-16s %6d requests, %8.1f QPS, p50 %6.1fms, p99 %6.1fms\n",
				n, ns.Requests, ns.QPS, ns.P50MS, ns.P99MS)
		}
		fmt.Printf("  redirects followed: %d\n", rep.Redirects)
	}
	// Budget exhaustion is a routing failure, never excusable: a healthy
	// cluster resolves any request within a hop or two.
	if rep.Exhausted > 0 {
		return fmt.Errorf("%d requests exhausted their redirect/retry budget of %d", rep.Exhausted, *redirects)
	}
	if rep.Errors > 0 && !*allowErrs {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

// writeTrace records a schedule to a trace file; the write is atomic
// enough for a load tool (full file or an error, no torn header).
func writeTrace(path string, events []scenario.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := scenario.WriteTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readTrace loads a recorded schedule, rejecting corrupt files.
func readTrace(path string) ([]scenario.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scenario.ReadTrace(f)
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
