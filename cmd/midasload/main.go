// Command midasload drives a running midasd with N concurrent
// closed-loop clients and reports sustained QPS plus latency
// percentiles — the regression-gated "how fast is serving really"
// number.
//
// Usage:
//
//	midasload -addr http://localhost:8642 -clients 200 -duration 10s
//	midasload -addr http://localhost:8642 -clients 50 -requests 20 -query Q13
//
// The run fails (exit 1) when any request errors, so a smoke run
// doubles as a correctness gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "midasload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "http://localhost:8642", "midasd base URL, or comma-separated cluster member URLs")
		federation = flag.String("federation", "", "federation name (empty on a single-tenant server)")
		query      = flag.String("query", "Q12", "query to submit")
		clients    = flag.Int("clients", 50, "concurrent clients")
		requests   = flag.Int("requests", 0, "requests per client (0 = run for -duration)")
		duration   = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		weights    = flag.String("weights", "1,1", "policy weights, comma-separated")
		timeoutMS  = flag.Int64("timeout-ms", 0, "per-request server budget (0 = server default)")
		allowErrs  = flag.Bool("allow-errors", false, "exit 0 even when requests failed")
		redirects  = flag.Int("redirect-budget", 4, "307 follows + retries each request may spend")
		backoff    = flag.Duration("retry-backoff", 50*time.Millisecond, "pause before retrying a dead node")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	w, err := parseFloats(*weights)
	if err != nil {
		return fmt.Errorf("bad -weights: %w", err)
	}

	cfg := workload.LoadConfig{
		Federation:     *federation,
		Query:          *query,
		Clients:        *clients,
		Requests:       *requests,
		Duration:       *duration,
		Weights:        w,
		TimeoutMS:      *timeoutMS,
		RedirectBudget: *redirects,
		RetryBackoff:   *backoff,
	}
	if addrs := strings.Split(*addr, ","); len(addrs) > 1 {
		cfg.Addrs = addrs
	} else {
		cfg.BaseURL = strings.TrimRight(*addr, "/")
	}
	rep, err := workload.RunLoad(context.Background(), cfg)
	if err != nil {
		return err
	}

	fmt.Println(rep)
	statuses := make([]int, 0, len(rep.StatusCounts))
	for s := range rep.StatusCounts {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		label := "transport error"
		if s != 0 {
			label = fmt.Sprintf("HTTP %d %s", s, http.StatusText(s))
		}
		fmt.Printf("  %-28s %d\n", label, rep.StatusCounts[s])
	}
	if len(rep.PerNode) > 1 || rep.Redirects > 0 {
		nodes := make([]string, 0, len(rep.PerNode))
		for n := range rep.PerNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			ns := rep.PerNode[n]
			fmt.Printf("  node %-16s %6d requests, %8.1f QPS, p50 %6.1fms, p99 %6.1fms\n",
				n, ns.Requests, ns.QPS, ns.P50MS, ns.P99MS)
		}
		fmt.Printf("  redirects followed: %d\n", rep.Redirects)
	}
	// Budget exhaustion is a routing failure, never excusable: a healthy
	// cluster resolves any request within a hop or two.
	if rep.Exhausted > 0 {
		return fmt.Errorf("%d requests exhausted their redirect/retry budget of %d", rep.Exhausted, *redirects)
	}
	if rep.Errors > 0 && !*allowErrs {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
	return nil
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
