// Command midasctl drives the MIDAS/DREAM reproduction from the shell:
// it regenerates the paper's tables and figures, runs ablations, and
// demonstrates one end-to-end scheduling round.
//
// Usage:
//
//	midasctl [flags] <command>
//
// Commands:
//
//	pricing     print Table 1 (instance pricing)
//	table2      print Table 2 (R² vs window size, exact-match check)
//	table3      print Table 3 (MRE at 100 MiB)
//	table4      print Table 4 (MRE at 1 GiB)
//	fig3        print the Figure 3 comparison (GA vs WSM MOQP)
//	example31   print the Example 3.1 estimation-throughput study
//	ablations   print the four design-choice ablations
//	scenarios   print the scenario sweep: MRE, regret and latency
//	            percentiles per (arrival process × chaos profile) cell
//	run-query   run one full pipeline round (enumerate→estimate→
//	            optimize→select→execute) and print the decision
//	gen         print generator statistics for a scale factor
//	cluster-status
//	            print per-peer health and the routing table of the
//	            midasd cluster at -addr
//	all         everything above, in paper order
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/ires"
	"repro/internal/server"
	"repro/internal/tpch"
)

func main() {
	var (
		seed   = flag.Int64("seed", 42, "base random seed")
		reps   = flag.Int("reps", 5, "repetitions for the MRE campaigns")
		hist   = flag.Int("history", 60, "history size for the MRE campaigns")
		tests  = flag.Int("tests", 30, "test queries for the MRE campaigns")
		sf     = flag.Float64("sf", 0.01, "scale factor for gen/run-query")
		query  = flag.String("query", "Q12", "TPC-H query for run-query (Q12, Q13, Q14, Q17)")
		events = flag.Int("events", 120, "events per scenario for the scenarios sweep")
		addr   = flag.String("addr", "http://127.0.0.1:8080", "midasd base URL for cluster-status")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: midasctl [flags] <pricing|table2|table3|table4|fig3|example31|ablations|scenarios|run-query|gen|cluster-status|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Reject bad flag values up front, before a campaign burns minutes
	// only to fail deep inside an experiment.
	if *reps < 1 || *hist < 1 || *tests < 1 {
		fmt.Fprintf(os.Stderr, "midasctl: -reps, -history and -tests must be positive\n")
		os.Exit(2)
	}
	if *sf <= 0 {
		fmt.Fprintf(os.Stderr, "midasctl: -sf must be positive, got %v\n", *sf)
		os.Exit(2)
	}
	q, err := tpch.ParseQueryID(*query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "midasctl: bad -query: %v\n", err)
		os.Exit(2)
	}

	opts := experiments.MREOptions{Reps: *reps, HistorySize: *hist, TestQueries: *tests, Seed: *seed}
	switch cmd := flag.Arg(0); cmd {
	case "pricing":
		err = printPricing()
	case "table2":
		err = printTable2()
	case "table3":
		err = printTable3(opts)
	case "table4":
		err = printTable4(opts)
	case "fig3":
		err = printFig3(*seed)
	case "example31":
		err = printExample31(*seed)
	case "ablations":
		err = printAblations(*seed)
	case "scenarios":
		err = printScenarios(*seed, *events)
	case "run-query":
		err = runQuery(*seed, *sf, q)
	case "gen":
		err = printGen(*sf, *seed)
	case "cluster-status":
		err = printClusterStatus(*addr)
	case "all":
		err = runAll(opts, *seed, *sf)
	default:
		fmt.Fprintf(os.Stderr, "midasctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "midasctl: %v\n", err)
		os.Exit(1)
	}
}

func printPricing() error {
	fmt.Println(experiments.Table1Pricing().Render())
	return nil
}

func printTable2() error {
	t, err := experiments.Table2R2()
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

func printTable3(opts experiments.MREOptions) error {
	_, t, err := experiments.Table3MRE(opts)
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

func printTable4(opts experiments.MREOptions) error {
	_, t, err := experiments.Table4MRE(opts)
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

func printFig3(seed int64) error {
	_, t, err := experiments.RunFig3(experiments.Fig3Options{PolicyChanges: 5, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

func printExample31(seed int64) error {
	_, t, err := experiments.RunExample31(experiments.Example31Options{Plans: 2000, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

func printAblations(seed int64) error {
	opts := experiments.AblationOptions{Reps: 3, Seed: seed}
	for _, run := range []func(experiments.AblationOptions) (*experiments.Table, error){
		experiments.AblationWindowGrowth,
		experiments.AblationR2Threshold,
		experiments.AblationRecency,
		experiments.AblationComposite,
		experiments.AblationOptimizer,
	} {
		t, err := run(opts)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	}
	return nil
}

func printScenarios(seed int64, events int) error {
	_, t, err := experiments.RunScenarios(experiments.ScenarioOptions{Seed: seed, Events: events})
	if err != nil {
		return err
	}
	fmt.Println(t.Render())
	return nil
}

func runQuery(seed int64, sf float64, q tpch.QueryID) error {
	fmt.Printf("Running %v end to end at SF %v (full relational execution)\n\n", q, sf)
	fed, err := federation.DefaultTopology(seed)
	if err != nil {
		return err
	}
	db, err := tpch.Generate(sf, tpch.GenOptions{Seed: seed})
	if err != nil {
		return err
	}
	exec := federation.NewFullExecutor(fed, db)
	model, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		return err
	}
	sched, err := ires.NewScheduler(fed, exec, model, []int{1, 2, 4}, seed)
	if err != nil {
		return err
	}
	fmt.Println("bootstrapping history with 12 random plan executions...")
	if err := sched.Bootstrap(q, 12); err != nil {
		return err
	}
	dec, err := sched.Submit(q, ires.Policy{Weights: []float64{1, 1}})
	if err != nil {
		return err
	}
	fmt.Printf("plan space: %d QEPs, Pareto set: %d\n", dec.PlanSpace, dec.ParetoSize)
	fmt.Printf("chosen plan: %v\n", dec.Plan)
	fmt.Printf("estimated:   %.2f s, $%.5f\n", dec.Estimated[0], dec.Estimated[1])
	fmt.Printf("measured:    %.2f s, $%.5f\n", dec.Outcome.TimeS, dec.Outcome.MoneyUSD)
	if dec.Outcome.Result != nil {
		fmt.Printf("\nresult (%d rows):\n", len(dec.Outcome.Result.Rows))
		for i, row := range dec.Outcome.Result.Rows {
			if i == 10 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %v\n", row)
		}
	}
	return nil
}

func printGen(sf float64, seed int64) error {
	db, err := tpch.Generate(sf, tpch.GenOptions{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("TPC-H population at SF %v (seed %d):\n", sf, seed)
	for _, table := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		rows, err := db.TableRows(table)
		if err != nil {
			return err
		}
		bytes, err := db.TableBytes(table)
		if err != nil {
			return err
		}
		fmt.Printf("  %-9s %9d rows  %10.1f KiB\n", table, rows, bytes/1024)
	}
	fmt.Printf("  total     %21.1f MiB\n", db.TotalBytes()/1024/1024)
	return nil
}

// printClusterStatus reads one node's routing table, then asks every
// member for its own health. A member that cannot be reached is
// reported as such rather than failing the whole status — that is
// exactly the situation an operator runs this command in.
func printClusterStatus(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	var table server.ClusterResponse
	if err := getJSON(client, addr+"/v1/cluster", &table); err != nil {
		return fmt.Errorf("%s: %w (is midasd running in cluster mode?)", addr, err)
	}
	fmt.Printf("cluster as seen by %s (routing epoch %d, %d members)\n\n",
		table.Node, table.Epoch, len(table.Members))

	fmt.Println("members:")
	for _, m := range table.Members {
		var health server.ClusterHealthResponse
		if err := getJSON(client, m.Addr+"/v1/cluster/health", &health); err != nil {
			fmt.Printf("  %-12s %-28s UNREACHABLE (%v)\n", m.ID, m.Addr, err)
			continue
		}
		fmt.Printf("  %-12s %-28s up      epoch=%d", m.ID, m.Addr, health.Epoch)
		if health.Epoch != table.Epoch {
			fmt.Printf(" (STALE, expected %d)", table.Epoch)
		}
		fmt.Println()
		for _, fed := range sortedKeys(health.Replication) {
			fmt.Printf("      serves %-12s replication=%s\n", fed, health.Replication[fed])
		}
		for _, peer := range sortedKeys(health.Peers) {
			ph := health.Peers[peer]
			fmt.Printf("      sees   %-12s %-8s", peer, ph.Status)
			if ph.Misses > 0 {
				fmt.Printf(" misses=%d", ph.Misses)
			}
			if ph.RTTMS > 0 {
				fmt.Printf(" rtt=%.1fms", ph.RTTMS)
			}
			fmt.Println()
		}
	}

	fmt.Println("\nplacements:")
	for _, fed := range sortedKeys(table.Placements) {
		p := table.Placements[fed]
		fmt.Printf("  %-16s owner=%-12s", fed, p.Owner)
		if p.Standby != "" {
			fmt.Printf(" standby=%-12s", p.Standby)
		}
		fmt.Printf(" state@%s=%s\n", table.Node, p.State)
	}
	return nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runAll(opts experiments.MREOptions, seed int64, sf float64) error {
	if err := printPricing(); err != nil {
		return err
	}
	if err := printTable2(); err != nil {
		return err
	}
	if err := printTable3(opts); err != nil {
		return err
	}
	if err := printTable4(opts); err != nil {
		return err
	}
	if err := printFig3(seed); err != nil {
		return err
	}
	if err := printExample31(seed); err != nil {
		return err
	}
	if err := printAblations(seed); err != nil {
		return err
	}
	return runQuery(seed, sf, tpch.QueryQ12)
}
