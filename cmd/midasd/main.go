// Command midasd is the long-running federation query service: it
// hosts one or more named federations behind the HTTP/JSON API of
// internal/server and serves scheduling rounds until told to stop.
//
// Usage:
//
//	midasd [flags]
//
// With -config, the hosted federations come from a JSON file (either a
// bare array of specs or {"federations": [...]}); otherwise a single
// federation is assembled from the flags. SIGINT/SIGTERM drain
// gracefully: health flips to 503, in-flight requests finish, then the
// process exits 0.
//
// With -data-dir, every query history is durable: recorded executions
// are written ahead to a per-query WAL under that directory, compacted
// into snapshots every -checkpoint-interval (and at drain, and via
// POST /v1/admin/checkpoint), and replayed on the next boot — a
// restarted daemon estimates from exactly the history it had, instead
// of re-paying cold-start bootstrap sweeps. -wal-fsync trades append
// throughput for durability against machine (not just process) crashes.
//
// Example:
//
//	midasd -addr :8642 -sf 0.1 -bootstrap 20 -data-dir /var/lib/midasd &
//	curl -s localhost:8642/healthz
//	curl -s -X POST localhost:8642/v1/queries \
//	     -d '{"query": "Q12", "weights": [1, 1]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("midasd: ")
	log.SetOutput(os.Stderr)
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "midasd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8642", "listen address")
		configPath = flag.String("config", "", "JSON federation config; overrides the single-federation flags")

		name        = flag.String("name", "default", "federation name (single-federation mode)")
		topology    = flag.String("topology", "default", "topology: default or threecloud")
		seed        = flag.Int64("seed", 42, "base random seed")
		sf          = flag.Float64("sf", 0.1, "simulated data scale (0.1 ≈ 100 MiB)")
		calibSF     = flag.Float64("calib-sf", 0.004, "calibration scale factor")
		parallelism = flag.Int("parallelism", 0, "estimation worker pool (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache-size", 0, "model cache size (0 = default, negative disables)")
		nodeChoices = flag.String("node-choices", "1,2,4", "comma-separated cluster-size menu")
		bootstrap   = flag.Int("bootstrap", 20, "bootstrap executions per served query")
		queries     = flag.String("queries", "", "comma-separated query subset (default: all)")

		queueDepth     = flag.Int("queue-depth", 1024, "bounded admission queue depth")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request budget (exceeded → 504)")
		sweepTimeout   = flag.Duration("sweep-timeout", 60*time.Second, "per-plan-sweep budget")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")

		dataDir            = flag.String("data-dir", "", "root directory for durable query histories (empty = in-memory only)")
		checkpointInterval = flag.Duration("checkpoint-interval", time.Minute, "periodic WAL→snapshot compaction; 0 disables the timer (requires -data-dir)")
		walFsync           = flag.Bool("wal-fsync", false, "fsync the history WAL after every recorded execution (requires -data-dir)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	specs, err := federationSpecs(*configPath, *name, *topology, *seed, *sf, *calibSF,
		*parallelism, *cacheSize, *nodeChoices, *bootstrap, *queries)
	if err != nil {
		return err
	}

	if *dataDir == "" && (*walFsync || *checkpointInterval != time.Minute) {
		log.Printf("warning: -wal-fsync/-checkpoint-interval have no effect without -data-dir")
	}
	var storeCfg server.StoreConfig
	if *dataDir != "" {
		storeCfg = server.StoreConfig{
			Dir:                *dataDir,
			CheckpointInterval: *checkpointInterval,
			Fsync:              *walFsync,
		}
		log.Printf("durable histories under %s (checkpoint every %v, fsync %v)",
			*dataDir, *checkpointInterval, *walFsync)
	}

	log.Printf("building %d federation(s) (calibration + recovery + bootstrap)...", len(specs))
	began := time.Now()
	srv, err := server.New(server.Config{
		Federations:    specs,
		QueueDepth:     *queueDepth,
		RequestTimeout: *requestTimeout,
		SweepTimeout:   *sweepTimeout,
		Store:          storeCfg,
	})
	if err != nil {
		return err
	}
	log.Printf("federations ready in %.1fs", time.Since(began).Seconds())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("received %v, draining (budget %v)...", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("drained cleanly")
	return nil
}

// federationSpecs resolves the hosted federations from -config or the
// single-federation flags.
func federationSpecs(configPath, name, topology string, seed int64, sf, calibSF float64,
	parallelism, cacheSize int, nodeChoices string, bootstrap int, queries string) ([]server.FederationSpec, error) {
	if configPath != "" {
		specs, err := server.LoadSpecsFile(configPath)
		if err != nil {
			return nil, err
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("config %s declares no federations", configPath)
		}
		return specs, nil
	}
	nodes, err := parseInts(nodeChoices)
	if err != nil {
		return nil, fmt.Errorf("bad -node-choices: %w", err)
	}
	spec := server.FederationSpec{
		Name:        name,
		Topology:    topology,
		Seed:        seed,
		SF:          sf,
		CalibSF:     calibSF,
		Parallelism: parallelism,
		CacheSize:   cacheSize,
		NodeChoices: nodes,
		Bootstrap:   bootstrap,
	}
	if queries != "" {
		spec.Queries = strings.Split(queries, ",")
	}
	return []server.FederationSpec{spec}, nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
