// Command midasd is the long-running federation query service: it
// hosts one or more named federations behind the HTTP/JSON API of
// internal/server and serves scheduling rounds until told to stop.
//
// Usage:
//
//	midasd [flags]
//
// With -config, the hosted federations come from a JSON file (either a
// bare array of specs or {"federations": [...]}); otherwise a single
// federation is assembled from the flags. SIGINT/SIGTERM drain
// gracefully: health flips to 503, in-flight requests finish, then the
// process exits 0.
//
// With -data-dir, every query history is durable: recorded executions
// are written ahead to a per-query WAL under that directory, compacted
// into snapshots every -checkpoint-interval (and at drain, and via
// POST /v1/admin/checkpoint), and replayed on the next boot — a
// restarted daemon estimates from exactly the history it had, instead
// of re-paying cold-start bootstrap sweeps. -wal-fsync trades append
// throughput for durability against machine (not just process) crashes;
// -wal-group-commit buys the same durability at a fraction of the cost
// by coalescing concurrent appends onto shared fsyncs (tuned with
// -wal-commit-interval and -wal-commit-batch) — no response leaves the
// daemon before the fsync covering its recorded execution returns.
//
// With -chaos, a named fault-injection profile (site outages,
// stragglers, price spikes, autoscaling resizes — see
// docs/operations.md) is attached to the simulated cloud after
// bootstrap; -chaos-seed makes the fault schedule replayable
// independently of the topology seed.
//
// Observability: the daemon logs structured JSON (log/slog) to stderr
// — request-scoped lines carry federation, query, decision, status and
// duration, and -log-level debug turns per-request logging on — and
// serves Prometheus metrics at GET /metrics (request latency
// histograms, sweep/model-cache counters, WAL health; see
// docs/operations.md for how to read them). -debug-addr additionally
// exposes net/http/pprof and a second /metrics on a separate,
// firewall-able listener.
//
// Example:
//
//	midasd -addr :8642 -sf 0.1 -bootstrap 20 -data-dir /var/lib/midasd &
//	curl -s localhost:8642/healthz
//	curl -s -X POST localhost:8642/v1/queries \
//	     -d '{"query": "Q12", "weights": [1, 1]}'
//	curl -s localhost:8642/metrics | grep midas_request_duration
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "midasd: %v\n", err)
		os.Exit(1)
	}
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", s)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8642", "listen address")
		configPath = flag.String("config", "", "JSON federation config; overrides the single-federation flags")

		name        = flag.String("name", "default", "federation name (single-federation mode)")
		topology    = flag.String("topology", "default", "topology: default or threecloud")
		seed        = flag.Int64("seed", 42, "base random seed")
		sf          = flag.Float64("sf", 0.1, "simulated data scale (0.1 ≈ 100 MiB)")
		calibSF     = flag.Float64("calib-sf", 0.004, "calibration scale factor")
		parallelism = flag.Int("parallelism", 0, "estimation worker pool (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache-size", 0, "model cache size (0 = default, negative disables)")
		nodeChoices = flag.String("node-choices", "1,2,4", "comma-separated cluster-size menu (no duplicates)")
		bootstrap   = flag.Int("bootstrap", 20, "bootstrap executions per served query")
		queries     = flag.String("queries", "", "comma-separated query subset (default: all)")
		prunePolicy = flag.String("prune-policy", "full", "plan-sweep prune policy: full (estimate every QEP), greedy (cost-ordered walk with early termination), topk (deterministic sample)")
		pruneBudget = flag.Int("prune-budget", 0, "max QEPs estimated per sweep for greedy/topk (0 = policy default)")
		chaos       = flag.String("chaos", "", "fault-injection profile applied to the simulated cloud after bootstrap: "+strings.Join(cloud.ChaosProfileNames(), ", "))
		chaosSeed   = flag.Int64("chaos-seed", 0, "seed for the fault schedule (0 = -seed)")

		queueDepth     = flag.Int("queue-depth", 1024, "bounded admission queue depth")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request budget (exceeded → 504)")
		sweepTimeout   = flag.Duration("sweep-timeout", 60*time.Second, "per-plan-sweep budget")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")

		dataDir            = flag.String("data-dir", "", "root directory for durable query histories (empty = in-memory only)")
		checkpointInterval = flag.Duration("checkpoint-interval", time.Minute, "periodic WAL→snapshot compaction; 0 disables the timer (requires -data-dir)")
		walFsync           = flag.Bool("wal-fsync", false, "fsync the history WAL after every recorded execution (requires -data-dir)")
		walGroupCommit     = flag.Bool("wal-group-commit", false, "coalesce WAL fsyncs across concurrent appends: per-append durability at a fraction of -wal-fsync's cost (requires -data-dir; supersedes -wal-fsync)")
		walCommitInterval  = flag.Duration("wal-commit-interval", 0, "group-commit max delay waiting for companion appends before the fsync is issued (0 = none: sync as soon as the committer is free; requires -wal-group-commit)")
		walCommitBatch     = flag.Int("wal-commit-batch", 0, "group-commit max batch before a delayed fsync is issued early (0 = default 128; requires -wal-group-commit)")

		nodeID        = flag.String("node-id", "", "this node's name in -cluster-peers (cluster mode)")
		clusterPeers  = flag.String("cluster-peers", "", `cluster membership as "id=url,id=url,..." including this node; empty = standalone`)
		replicate     = flag.Bool("cluster-replicate", false, "ship each owned federation's WAL to its standby synchronously")
		syncInterval  = flag.Duration("cluster-sync-interval", 2*time.Second, "standby catch-up snapshot cadence (requires -cluster-replicate)")
		autoFailover  = flag.Bool("cluster-auto-failover", false, "probe peers and auto-promote this node's standby federations when their owner is confirmed dead")
		probeInterval = flag.Duration("cluster-probe-interval", time.Second, "failure-detector probe cadence (requires -cluster-auto-failover)")
		probeTimeout  = flag.Duration("cluster-probe-timeout", 0, "per-probe deadline (0 = probe interval)")
		suspectAfter  = flag.Int("cluster-suspect-after", 3, "consecutive probe misses before a peer is suspect (pauses rebalancing)")
		downAfter     = flag.Int("cluster-down-after", 6, "consecutive probe misses before a peer is declared dead (triggers auto-failover)")
		autoRebalance = flag.Bool("cluster-auto-rebalance", false, "drift federations back to their ring-computed owners after membership settles (requires -cluster-auto-failover)")

		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug enables per-request lines)")
		debugAddr = flag.String("debug-addr", "", "optional second listener with net/http/pprof and /metrics (keep it private)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	specs, err := federationSpecs(*configPath, *name, *topology, *seed, *sf, *calibSF,
		*parallelism, *cacheSize, *nodeChoices, *bootstrap, *queries, *prunePolicy, *pruneBudget,
		*chaos, *chaosSeed)
	if err != nil {
		return err
	}

	if *dataDir == "" && (*walFsync || *walGroupCommit || *checkpointInterval != time.Minute) {
		logger.Warn("-wal-fsync/-wal-group-commit/-checkpoint-interval have no effect without -data-dir")
	}
	if !*walGroupCommit && (*walCommitInterval != 0 || *walCommitBatch != 0) {
		logger.Warn("-wal-commit-interval/-wal-commit-batch have no effect without -wal-group-commit")
	}
	var storeCfg server.StoreConfig
	if *dataDir != "" {
		storeCfg = server.StoreConfig{
			Dir:                *dataDir,
			CheckpointInterval: *checkpointInterval,
			Fsync:              *walFsync,
			GroupCommit:        *walGroupCommit,
			CommitInterval:     *walCommitInterval,
			CommitBatch:        *walCommitBatch,
		}
		logger.Info("durable histories enabled",
			"data_dir", *dataDir, "checkpoint_interval", checkpointInterval.String(),
			"wal_fsync", *walFsync, "wal_group_commit", *walGroupCommit)
	}

	clusterCfg, err := parseClusterFlags(*nodeID, *clusterPeers, *replicate, *syncInterval)
	if err != nil {
		return err
	}
	if clusterCfg == nil && (*autoFailover || *autoRebalance) {
		return fmt.Errorf("-cluster-auto-failover/-cluster-auto-rebalance require -cluster-peers")
	}
	if *autoRebalance && !*autoFailover {
		return fmt.Errorf("-cluster-auto-rebalance requires -cluster-auto-failover (the rebalancer rides the failure detector)")
	}
	if clusterCfg != nil {
		clusterCfg.AutoFailover = *autoFailover
		clusterCfg.AutoRebalance = *autoRebalance
		clusterCfg.ProbeInterval = *probeInterval
		clusterCfg.ProbeTimeout = *probeTimeout
		clusterCfg.SuspectAfter = *suspectAfter
		clusterCfg.DownAfter = *downAfter
		logger.Info("cluster mode", "node", clusterCfg.NodeID,
			"peers", len(clusterCfg.Peers), "replicate", clusterCfg.Replicate,
			"auto_failover", *autoFailover, "auto_rebalance", *autoRebalance)
	}

	logger.Info("building federations (calibration + recovery + bootstrap)", "count", len(specs))
	began := time.Now()
	srv, err := server.New(server.Config{
		Federations:    specs,
		QueueDepth:     *queueDepth,
		RequestTimeout: *requestTimeout,
		SweepTimeout:   *sweepTimeout,
		Store:          storeCfg,
		Cluster:        clusterCfg,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	logger.Info("federations ready", "elapsed_s", time.Since(began).Seconds())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugMux(srv)}
		go func() {
			logger.Info("debug listener (pprof + metrics)", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// The debug listener is an operator convenience; losing
				// it should not take the serving process down.
				logger.Warn("debug listener failed", "error", err.Error())
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String(), "budget", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	if drainErr != nil {
		return drainErr
	}
	logger.Info("drained cleanly")
	return nil
}

// debugMux assembles the -debug-addr handler: the pprof suite plus a
// second /metrics, so profiling and scraping can live on a private
// listener while the serving port stays exposed.
func debugMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", srv.Metrics().Handler())
	return mux
}

// federationSpecs resolves the hosted federations from -config or the
// single-federation flags. With -config, per-federation "prune_policy"
// and "prune_budget" JSON fields override the flags (which apply only
// to the single-federation mode).
func federationSpecs(configPath, name, topology string, seed int64, sf, calibSF float64,
	parallelism, cacheSize int, nodeChoices string, bootstrap int, queries,
	prunePolicy string, pruneBudget int, chaos string, chaosSeed int64) ([]server.FederationSpec, error) {
	if configPath != "" {
		specs, err := server.LoadSpecsFile(configPath)
		if err != nil {
			return nil, err
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("config %s declares no federations", configPath)
		}
		return specs, nil
	}
	nodes, err := parseInts(nodeChoices)
	if err != nil {
		return nil, fmt.Errorf("bad -node-choices: %w", err)
	}
	spec := server.FederationSpec{
		Name:        name,
		Topology:    topology,
		Seed:        seed,
		SF:          sf,
		CalibSF:     calibSF,
		Parallelism: parallelism,
		CacheSize:   cacheSize,
		NodeChoices: nodes,
		Bootstrap:   bootstrap,
		PrunePolicy: prunePolicy,
		PruneBudget: pruneBudget,
		Chaos:       chaos,
		ChaosSeed:   chaosSeed,
	}
	if queries != "" {
		spec.Queries = strings.Split(queries, ",")
	}
	return []server.FederationSpec{spec}, nil
}

// parseClusterFlags resolves -node-id/-cluster-peers into a cluster
// config; both empty means standalone.
func parseClusterFlags(nodeID, peers string, replicate bool, syncInterval time.Duration) (*server.ClusterConfig, error) {
	if peers == "" {
		if nodeID != "" {
			return nil, fmt.Errorf("-node-id requires -cluster-peers")
		}
		return nil, nil
	}
	if nodeID == "" {
		return nil, fmt.Errorf("-cluster-peers requires -node-id")
	}
	cfg := &server.ClusterConfig{
		NodeID:       nodeID,
		Replicate:    replicate,
		SyncInterval: syncInterval,
	}
	for _, part := range strings.Split(peers, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf(`bad -cluster-peers entry %q (want "id=url")`, part)
		}
		cfg.Peers = append(cfg.Peers, cluster.Member{ID: id, Addr: strings.TrimRight(url, "/")})
	}
	return cfg, nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
