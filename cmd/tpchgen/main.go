// Command tpchgen generates the TPC-H population used by the
// reproduction and exports it as CSV files, one per table — handy for
// loading the same deterministic data into a real external engine or
// for eyeballing the generator's output.
//
// Usage:
//
//	tpchgen -sf 0.01 -seed 42 -out /tmp/tpch [-tables lineitem,orders]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tpch"
)

func main() {
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor (1 ≈ 1 GB)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", ".", "output directory (created if missing)")
		tables = flag.String("tables", "", "comma-separated table subset (default: all)")
	)
	flag.Parse()

	if err := run(*sf, *seed, *out, *tables); err != nil {
		fmt.Fprintf(os.Stderr, "tpchgen: %v\n", err)
		os.Exit(1)
	}
}

func run(sf float64, seed int64, out, tables string) error {
	selected := tpch.CSVTables
	if tables != "" {
		selected = strings.Split(tables, ",")
	}
	db, err := tpch.Generate(sf, tpch.GenOptions{Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, table := range selected {
		table = strings.TrimSpace(table)
		path := filepath.Join(out, table+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := db.WriteCSV(table, f); err != nil {
			f.Close()
			return fmt.Errorf("table %q: %w", table, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		rows, err := db.TableRows(table)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %-9s %8d rows → %s\n", table, rows, path)
	}
	return nil
}
