// Command tpchgen generates the TPC-H population used by the
// reproduction and exports it as CSV files, one per table — handy for
// loading the same deterministic data into a real external engine or
// for eyeballing the generator's output.
//
// Usage:
//
//	tpchgen -sf 0.01 -seed 42 -out /tmp/tpch [-tables lineitem,orders]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tpch"
)

func main() {
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor (1 ≈ 1 GB)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", ".", "output directory (created if missing)")
		tables = flag.String("tables", "", "comma-separated table subset (default: all)")
	)
	flag.Parse()

	if err := run(*sf, *seed, *out, *tables); err != nil {
		fmt.Fprintf(os.Stderr, "tpchgen: %v\n", err)
		os.Exit(1)
	}
}

func run(sf float64, seed int64, out, tables string) error {
	selected := tpch.CSVTables
	if tables != "" {
		selected = strings.Split(tables, ",")
		for i, table := range selected {
			selected[i] = strings.TrimSpace(table)
		}
		// Validate the subset before generating, so a typo fails in
		// milliseconds instead of after a multi-gigabyte generation —
		// and never leaves stray empty .csv files behind.
		known := make(map[string]bool, len(tpch.CSVTables))
		for _, table := range tpch.CSVTables {
			known[table] = true
		}
		for _, table := range selected {
			if !known[table] {
				return fmt.Errorf("unknown table %q (have: %s)", table, strings.Join(tpch.CSVTables, ", "))
			}
		}
	}
	if sf <= 0 {
		return fmt.Errorf("-sf must be positive, got %v", sf)
	}
	db, err := tpch.Generate(sf, tpch.GenOptions{Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, table := range selected {
		path := filepath.Join(out, table+".csv")
		if err := writeTableCSV(db, table, path); err != nil {
			return err
		}
		rows, err := db.TableRows(table)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %-9s %8d rows → %s\n", table, rows, path)
	}
	return nil
}

// writeTableCSV exports one table, removing the partial file when the
// export fails so a crashed run cannot be mistaken for a complete one.
func writeTableCSV(db *tpch.Database, table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.WriteCSV(table, f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("table %q: %w", table, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}
