// Command linkcheck validates the repository's markdown cross-links:
// every relative link must point at an existing file (or directory)
// and every fragment must match a heading anchor in the target
// document, using GitHub's anchor derivation. External http(s) and
// mailto links are skipped — the gate is deterministic and runs
// offline, so CI cannot flake on someone else's web server.
//
// Usage:
//
//	linkcheck README.md DESIGN.md docs/
//
// Directories are walked for *.md files. Exit status 1 lists every
// broken link as file:line: message.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	files, err := collect(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(2)
	}
	var broken []string
	for _, f := range files {
		probs, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		broken = append(broken, probs...)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Println(b)
		}
		fmt.Printf("linkcheck: %d broken link(s) in %d file(s)\n", len(broken), len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

// collect expands the arguments into a list of markdown files.
func collect(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// linkRE matches inline links and images: [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use
// inline style.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// checkFile validates every link in one markdown file.
func checkFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for i, line := range strings.Split(string(raw), "\n") {
		// Links inside fenced code blocks are illustrative, not
		// navigation; skip them.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			if msg := checkTarget(path, m[1]); msg != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", path, i+1, msg))
			}
		}
	}
	return problems, nil
}

// checkTarget validates one link target relative to the file that
// holds it; "" means the link is fine.
func checkTarget(from, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external: out of scope by design
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := from
	if file != "" {
		resolved = filepath.Join(filepath.Dir(from), file)
		// Paths that climb out of the repository are GitHub web-app
		// URLs (the CI badge's ../../actions/... form), not repo files
		// — external, so out of scope like any http link. Both sides
		// must be absolute or Rel errors and the gate goes vacuous.
		if root := repoRoot(filepath.Dir(from)); root != "" {
			abs, err := filepath.Abs(resolved)
			if err == nil {
				if rel, err := filepath.Rel(root, abs); err == nil && strings.HasPrefix(rel, "..") {
					return ""
				}
			}
		}
		info, err := os.Stat(resolved)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
		if info.IsDir() || frag == "" {
			return ""
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(strings.ToLower(resolved), ".md") {
		return "" // anchors into non-markdown files are not checkable
	}
	ok, err := hasAnchor(resolved, frag)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !ok {
		return fmt.Sprintf("broken link %q: no heading anchors to #%s in %s", target, frag, resolved)
	}
	return ""
}

// repoRoot ascends from dir to the enclosing repository root (the
// first directory holding .git or go.mod); "" when there is none.
func repoRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		for _, marker := range []string{".git", "go.mod"} {
			if _, err := os.Stat(filepath.Join(abs, marker)); err == nil {
				return abs
			}
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return ""
		}
		abs = parent
	}
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-derived anchor equals frag.
func hasAnchor(path, frag string) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if heading == line || (heading != "" && heading[0] != ' ' && heading[0] != '\t') {
			continue // not a heading (e.g. "#!/bin/sh" or no space after #)
		}
		anchor := githubAnchor(strings.TrimSpace(heading))
		// GitHub de-duplicates repeated headings with -1, -2, …
		if n := seen[anchor]; n > 0 {
			seen[anchor]++
			anchor = fmt.Sprintf("%s-%d", anchor, n)
		} else {
			seen[anchor] = 1
		}
		if anchor == frag {
			return true, nil
		}
	}
	return false, nil
}

// githubAnchor derives the anchor id GitHub assigns a heading:
// lowercase, markup and punctuation stripped, spaces to hyphens.
func githubAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		default:
			// Punctuation and symbols (including `, *, :, /, ., →) are
			// dropped; non-ASCII letters and digits are kept, matching
			// GitHub's derivation.
			if r > 127 && (unicode.IsLetter(r) || unicode.IsNumber(r)) {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}
