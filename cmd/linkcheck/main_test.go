package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGithubAnchor(t *testing.T) {
	for heading, want := range map[string]string{
		"Quick start":                     "quick-start",
		"Serving: `midasd` + `midasload`": "serving-midasd--midasload",
		"Metrics: reading GET /metrics":   "metrics-reading-get-metrics",
		"What's_here":                     "whats_here",
	} {
		if got := githubAnchor(heading); got != want {
			t.Errorf("githubAnchor(%q) = %q, want %q", heading, got, want)
		}
	}
}

func TestCheckFileFindsBreakage(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Real Heading\ntext\n")
	md := write(t, dir, "doc.md", strings.Join([]string{
		"# Doc",
		"[good file](other.md)",
		"[good anchor](other.md#real-heading)",
		"[self anchor](#doc)",
		"[external](https://example.com/definitely-404)",
		"[missing file](nope.md)",
		"[missing anchor](other.md#not-there)",
		"```",
		"[inside fence](also-nope.md)",
		"```",
		"", //
	}, "\n"))

	probs, err := checkFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 2 {
		t.Fatalf("got %d problems, want 2:\n%s", len(probs), strings.Join(probs, "\n"))
	}
	if !strings.Contains(probs[0], "nope.md") {
		t.Errorf("first problem should be the missing file: %s", probs[0])
	}
	if !strings.Contains(probs[1], "#not-there") {
		t.Errorf("second problem should be the missing anchor: %s", probs[1])
	}
}

func TestDuplicateHeadingsDedupe(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "dup.md", "# Same\ntext\n# Same\n")
	md := write(t, dir, "doc.md", "[second](dup.md#same-1)\n[first](dup.md#same)\n")
	probs, err := checkFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("deduped anchors should resolve: %v", probs)
	}
}

// TestRepoRootEscapeSkippedButInsideChecked pins the boundary rule in
// a tree that has a repo marker: a link climbing out of the repo (the
// CI badge form) is skipped, while a broken link inside the repo is
// still reported — including when the checker is invoked with a
// relative path, the way CI runs it.
func TestRepoRootEscapeSkippedButInsideChecked(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "go.mod", "module tmp\n")
	write(t, dir, "doc.md", "[badge](../../actions/workflows/ci.yml/badge.svg)\n[broken](missing.md)\n")

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = os.Chdir(wd) }()

	probs, err := checkFile("doc.md") // relative, as in CI
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || !strings.Contains(probs[0], "missing.md") {
		t.Fatalf("want exactly the in-repo breakage, got %v", probs)
	}
}

func TestCollectWalksDirectories(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.md", "# A\n")
	write(t, dir, "sub/b.md", "# B\n")
	write(t, dir, "sub/ignore.txt", "not markdown")
	files, err := collect([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("collected %v, want 2 markdown files", files)
	}
}

// TestRepoDocsAreClean runs the checker over the repository's actual
// documentation — the same invocation CI performs.
func TestRepoDocsAreClean(t *testing.T) {
	root := "../.."
	var all []string
	for _, target := range []string{"README.md", "DESIGN.md", "docs"} {
		path := filepath.Join(root, target)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("doc target missing: %v", err)
		}
		files, err := collect([]string{path})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, files...)
	}
	for _, f := range all {
		probs, err := checkFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range probs {
			t.Error(p)
		}
	}
}
