package main

import (
	"regexp"
	"strings"
	"testing"
)

const oldRun = `
goos: linux
BenchmarkQ12SweepSequential-8   	       2	  10624482 ns/op
BenchmarkQ12SweepSequential-8   	       2	   9369944 ns/op
BenchmarkQ12SweepParallel-8     	       2	     99261 ns/op
BenchmarkQ12SweepParallel-8     	       2	     67566 ns/op
BenchmarkTPCHGenerate-8         	     100	   5000000 ns/op	3 B/op
PASS
`

const newRun = `
BenchmarkQ12SweepSequential-4   	       2	   9500000 ns/op
BenchmarkQ12SweepParallel-4     	       2	    120000 ns/op
BenchmarkFresh-4                	       2	       100 ns/op
PASS
`

func TestParseBenchTakesMin(t *testing.T) {
	parsed, err := parseBench(strings.NewReader(oldRun))
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed["BenchmarkQ12SweepSequential"]; got != 9369944 {
		t.Fatalf("sequential min = %v", got)
	}
	if got := parsed["BenchmarkQ12SweepParallel"]; got != 67566 {
		t.Fatalf("parallel min = %v", got)
	}
	if got := parsed["BenchmarkTPCHGenerate"]; got != 5000000 {
		t.Fatalf("generate = %v", got)
	}
}

func mustParse(t *testing.T, s string) map[string]float64 {
	t.Helper()
	parsed, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

func TestCompareFlagsOnlyGatedRegressions(t *testing.T) {
	old := mustParse(t, oldRun)
	niw := mustParse(t, newRun)

	// Parallel regressed 67566 → 120000 (+77%); gate on sweeps → fail,
	// and the failure names the benchmark with its delta and numbers.
	rows, regressed := compare(old, niw, regexp.MustCompile(`Q1[23]Sweep`), 0.25)
	if len(regressed) != 1 || !strings.HasPrefix(regressed[0], "BenchmarkQ12SweepParallel ") {
		t.Fatalf("regressed = %v", regressed)
	}
	for _, want := range []string{"+77.6%", "67566", "120000 ns/op"} {
		if !strings.Contains(regressed[0], want) {
			t.Fatalf("regression detail missing %q: %s", want, regressed[0])
		}
	}
	// Sequential improved; benchmarks on one side only never fail.
	for _, r := range rows {
		switch r.name {
		case "BenchmarkQ12SweepSequential":
			if r.failed || r.delta > 0.02 {
				t.Fatalf("sequential: %+v", r)
			}
		case "BenchmarkFresh", "BenchmarkTPCHGenerate":
			if r.failed {
				t.Fatalf("one-sided benchmark failed the gate: %+v", r)
			}
		}
	}

	// Same comparison gated on a pattern the regression misses → pass.
	if _, regressed := compare(old, niw, regexp.MustCompile(`Sequential`), 0.25); len(regressed) != 0 {
		t.Fatalf("unexpected regressions: %v", regressed)
	}

	// A generous threshold passes everything.
	if _, regressed := compare(old, niw, regexp.MustCompile(`.`), 1.0); len(regressed) != 0 {
		t.Fatalf("threshold 100%%: %v", regressed)
	}
}

func TestRenderMarkdown(t *testing.T) {
	old := mustParse(t, oldRun)
	niw := mustParse(t, newRun)
	rows, _ := compare(old, niw, regexp.MustCompile(`Q1[23]Sweep`), 0.25)
	md := renderMarkdown(rows, 0.25, "Q1[23]Sweep")
	for _, want := range []string{"❌ regressed", "BenchmarkQ12SweepParallel", "| —"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
