// Command benchgate compares two `go test -bench` outputs and fails
// when a benchmark regressed beyond a threshold — the PR gate that
// keeps the Q12/Q13 sweep numbers honest. benchstat renders the pretty
// statistics; benchgate is the deterministic pass/fail.
//
// Usage:
//
//	benchgate [-threshold 0.25] [-match 'Q1[23]Sweep'] [-summary out.md] old.txt new.txt
//
// Each file is standard `go test -bench` text. Repeated runs of one
// benchmark (-count N) are reduced to their minimum ns/op: the minimum
// is the least noisy estimate of what the code can do, which is what a
// regression gate should compare. Benchmarks present in only one file
// are reported but never fail the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		threshold = flag.Float64("threshold", 0.25, "fail when new/old - 1 exceeds this on a matched benchmark")
		match     = flag.String("match", ".", "regexp of benchmark names the gate applies to")
		summary   = flag.String("summary", "", "append the markdown comparison to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchgate [flags] old.txt new.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return fmt.Errorf("want exactly 2 bench files, got %d", flag.NArg())
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return fmt.Errorf("bad -match: %w", err)
	}
	old, err := parseBenchFile(flag.Arg(0))
	if err != nil {
		return err
	}
	niw, err := parseBenchFile(flag.Arg(1))
	if err != nil {
		return err
	}

	rows, regressed := compare(old, niw, re, *threshold)
	md := renderMarkdown(rows, *threshold, re.String())
	fmt.Print(md)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(md); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), *threshold*100, strings.Join(regressed, "; "))
	}
	return nil
}

// benchLine matches `BenchmarkName-8   	   100	   12345 ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench reduces a `go test -bench` stream to name → min ns/op.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func parseBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	parsed, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", path)
	}
	return parsed, nil
}

// row is one benchmark's comparison.
type row struct {
	name     string
	old, new float64 // min ns/op; 0 = absent
	delta    float64 // new/old - 1, when both present
	gated    bool    // name matched the gate pattern
	failed   bool
}

// compare joins the two runs and flags gated regressions beyond the
// threshold.
func compare(old, niw map[string]float64, gate *regexp.Regexp, threshold float64) ([]row, []string) {
	names := make(map[string]bool, len(old)+len(niw))
	for n := range old {
		names[n] = true
	}
	for n := range niw {
		names[n] = true
	}
	rows := make([]row, 0, len(names))
	var regressed []string
	for n := range names {
		r := row{name: n, old: old[n], new: niw[n], gated: gate.MatchString(n)}
		if r.old > 0 && r.new > 0 {
			r.delta = r.new/r.old - 1
			if r.gated && r.delta > threshold {
				r.failed = true
				// Name the culprit with its numbers: the failure line is
				// what a PR author sees first, and "which benchmark, by
				// how much" should not require opening the artifact.
				regressed = append(regressed, fmt.Sprintf("%s (%+.1f%%, %.0f → %.0f ns/op)",
					n, r.delta*100, r.old, r.new))
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(regressed)
	return rows, regressed
}

func renderMarkdown(rows []row, threshold float64, pattern string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### benchgate: min ns/op, fail >%.0f%% on /%s/\n\n", threshold*100, pattern)
	b.WriteString("| benchmark | old ns/op | new ns/op | delta | gate |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		oldS, newS, deltaS := "—", "—", "—"
		if r.old > 0 {
			oldS = fmt.Sprintf("%.0f", r.old)
		}
		if r.new > 0 {
			newS = fmt.Sprintf("%.0f", r.new)
		}
		if r.old > 0 && r.new > 0 {
			deltaS = fmt.Sprintf("%+.1f%%", r.delta*100)
		}
		status := ""
		switch {
		case r.failed:
			status = "❌ regressed"
		case r.gated && r.old > 0 && r.new > 0:
			status = "✅"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", r.name, oldS, newS, deltaS, status)
	}
	b.WriteString("\n")
	return b.String()
}
