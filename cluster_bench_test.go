package midas

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// BenchmarkRouteLookup measures the cluster routing decision every
// request pays before any scheduling work: federation name → owning
// member through the epoch-versioned table (consistent-hash ring plus
// override map). It sits on the serving hot path, so it is benchgate-
// pinned and must stay allocation-free.
func BenchmarkRouteLookup(b *testing.B) {
	members := make([]cluster.Member, 5)
	for i := range members {
		members[i] = cluster.Member{
			ID:   fmt.Sprintf("node-%d", i),
			Addr: fmt.Sprintf("http://10.0.0.%d:8642", i+1),
		}
	}
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		b.Fatal(err)
	}
	tab := cluster.NewTable(ring)
	// An override exercises the map probe a moved federation pays.
	tab, ok := tab.WithOverride("tenant-3", members[0].ID)
	if !ok {
		b.Fatal("override rejected")
	}
	feds := [...]string{"tenant-0", "tenant-1", "tenant-2", "tenant-3", "paper", "analytics"}

	if allocs := testing.AllocsPerRun(100, func() {
		for _, f := range feds {
			_ = tab.Owner(f)
		}
	}); allocs != 0 {
		b.Fatalf("route lookup allocates %.1f times per %d lookups, want 0", allocs, len(feds))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = tab.Owner(feds[i%len(feds)]).ID
	}
}

// sink defeats dead-code elimination of the benchmarked lookup.
var sink string
