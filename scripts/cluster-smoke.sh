#!/usr/bin/env bash
# cluster-smoke.sh — three-node midasd cluster end-to-end smoke:
#
#   1. boot three replicating nodes hosting three federations, with the
#      failure detector and auto-failover armed,
#   2. drive routing-aware load at every federation (exits non-zero on
#      any failed request, so the load run is itself an assertion),
#   3. SIGKILL one node mid-cluster (no drain, no checkpoint),
#   4. wait for the survivors to detect the death and auto-promote the
#      victim's federations from their shipped WALs — no operator
#      takeover is issued anywhere in this script,
#   5. assert zero acked-write loss (history lengths are unchanged) and
#      that the survivors serve every federation.
#
# Requirements: go, curl, jq. Usage: scripts/cluster-smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d /tmp/midas-cluster-smoke.XXXXXX)}"
MIDASD="${MIDASD:-$WORK/midasd}"
MIDASLOAD="${MIDASLOAD:-$WORK/midasload}"
BASE_PORT="${BASE_PORT:-9101}"
FEDS=(fedA fedB fedC)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do kill -KILL "$pid" 2> /dev/null || true; done
}
trap cleanup EXIT

log() { echo "[cluster-smoke] $*"; }

[ -x "$MIDASD" ] || go build -o "$MIDASD" ./cmd/midasd
[ -x "$MIDASLOAD" ] || go build -o "$MIDASLOAD" ./cmd/midasload

# --- membership -------------------------------------------------------
peers=""
addrs=""
for i in 1 2 3; do
  port=$((BASE_PORT + i - 1))
  peers="${peers:+$peers,}n$i=http://127.0.0.1:$port"
  addrs="${addrs:+$addrs,}http://127.0.0.1:$port"
done

cat > "$WORK/federations.json" <<'EOF'
{"federations": [
  {"name": "fedA", "sf": 0.05, "bootstrap": 12, "node_choices": [1, 2], "queries": ["Q12"]},
  {"name": "fedB", "sf": 0.05, "bootstrap": 12, "node_choices": [1, 2], "queries": ["Q12"]},
  {"name": "fedC", "sf": 0.05, "bootstrap": 12, "node_choices": [1, 2], "queries": ["Q12"]}
]}
EOF

# --- boot -------------------------------------------------------------
for i in 1 2 3; do
  port=$((BASE_PORT + i - 1))
  "$MIDASD" -addr "127.0.0.1:$port" -config "$WORK/federations.json" \
    -data-dir "$WORK/n$i" -node-id "n$i" -cluster-peers "$peers" \
    -cluster-replicate -cluster-sync-interval 200ms \
    -cluster-auto-failover -cluster-probe-interval 200ms \
    -cluster-suspect-after 3 -cluster-down-after 10 \
    -cluster-auto-rebalance \
    > "$WORK/n$i.log" 2>&1 &
  PIDS+=($!)
done
for i in 1 2 3; do
  port=$((BASE_PORT + i - 1))
  for _ in $(seq 1 120); do
    curl -sf "http://127.0.0.1:$port/readyz" > /dev/null && break
    kill -0 "${PIDS[$((i - 1))]}" 2> /dev/null || { log "n$i died during startup"; cat "$WORK/n$i.log"; exit 1; }
    sleep 1
  done
  curl -sf "http://127.0.0.1:$port/readyz" > /dev/null || { log "n$i never became ready"; exit 1; }
done
log "three nodes up: $peers"

table() { curl -sf "http://127.0.0.1:$BASE_PORT/v1/cluster" 2> /dev/null \
  || curl -sf "http://127.0.0.1:$((BASE_PORT + 1))/v1/cluster" \
  || curl -sf "http://127.0.0.1:$((BASE_PORT + 2))/v1/cluster"; }
owner_of() { table | jq -r ".placements[\"$1\"].owner"; }
standby_of() { table | jq -r ".placements[\"$1\"].standby"; }
addr_of() { table | jq -r ".members[] | select(.id == \"$1\") | .addr"; }
hist_len() { # hist_len <addr> <federation>
  curl -sf "$1/v1/history/Q12?federation=$2&limit=0" | jq .len
}

# --- load against every federation, through the routing table ---------
for fed in "${FEDS[@]}"; do
  log "load: $fed (owner $(owner_of "$fed"))"
  "$MIDASLOAD" -addr "$addrs" -federation "$fed" -clients 10 -requests 3
done

# Let the 200ms standby sync ship anything appended before its stream
# armed; once armed, every acked write is on the standby synchronously.
sleep 1

declare -A BEFORE
for fed in "${FEDS[@]}"; do
  BEFORE[$fed]="$(hist_len "$(addr_of "$(owner_of "$fed")")" "$fed")"
  log "$fed: ${BEFORE[$fed]} acked observations on $(owner_of "$fed")"
done

# --- kill one owner outright ------------------------------------------
victim="$(owner_of fedA)"
vidx="${victim#n}"
log "SIGKILL $victim (owner of fedA)"
kill -KILL "${PIDS[$((vidx - 1))]}"
wait "${PIDS[$((vidx - 1))]}" 2> /dev/null || true

# --- auto-failover: the detector must promote, not this script --------
# Down verdict needs down-after(10) consecutive missed 200ms probes, so
# ~2s of detection plus the promotion itself; 60s is a generous ceiling.
for fed in "${FEDS[@]}"; do
  if [ "$(owner_of "$fed")" != "$victim" ]; then continue; fi
  log "waiting for auto-promotion of $fed (owner $victim is dead)"
  promoted=""
  for _ in $(seq 1 120); do
    now="$(owner_of "$fed")"
    if [ "$now" != "$victim" ] && [ -n "$now" ] && [ "$now" != null ]; then
      promoted="$now"
      break
    fi
    sleep 0.5
  done
  [ -n "$promoted" ] || { log "FAIL: $fed never auto-promoted off $victim"; exit 1; }
  log "auto-promoted: $fed -> $promoted"
done

# --- zero acked-write loss + survivors serve everything ---------------
for fed in "${FEDS[@]}"; do
  owner="$(owner_of "$fed")"
  [ "$owner" != "$victim" ] || { log "$fed still routed at the dead node"; exit 1; }
  after="$(hist_len "$(addr_of "$owner")" "$fed")"
  if [ "$after" != "${BEFORE[$fed]}" ]; then
    log "FAIL: $fed lost acked writes across the kill: ${BEFORE[$fed]} -> $after"
    exit 1
  fi
  log "$fed: $after observations intact on $owner"
done

# The routing-aware client must ride out the dead seed: it refreshes
# the table from the survivors and lands every request.
for fed in "${FEDS[@]}"; do
  "$MIDASLOAD" -addr "$addrs" -federation "$fed" -clients 5 -requests 2
done

# Operator view of the aftermath: one survivor's routing table plus
# per-member health (the victim shows UNREACHABLE).
survivor_port=$BASE_PORT
[ "$victim" = "n1" ] && survivor_port=$((BASE_PORT + 1))
MIDASCTL="${MIDASCTL:-$WORK/midasctl}"
[ -x "$MIDASCTL" ] || go build -o "$MIDASCTL" ./cmd/midasctl
"$MIDASCTL" -addr "http://127.0.0.1:$survivor_port" cluster-status

log "PASS: node kill survived with auto-failover and zero acked-write loss"
