#!/usr/bin/env bash
# chaos-smoke.sh — scenario replay + owner SIGKILL end-to-end smoke:
#
#   1. boot two replicating midasd nodes hosting one chaosed federation
#      (the "outages" profile on a fixed -chaos-seed),
#   2. record a seeded open-loop bursty schedule to a trace file and
#      fire it against the cluster (midasload -record; the run exits
#      non-zero on any failed request),
#   3. SIGKILL the owner (no drain, no checkpoint),
#   4. promote the standby from its shipped WAL, asserting every acked
#      observation survived,
#   5. replay the identical trace (midasload -replay) against the
#      survivor and assert the final history holds bootstrap + both
#      runs' acked events — zero acked-write loss end to end.
#
# Requirements: go, curl, jq. Usage: scripts/chaos-smoke.sh [workdir]
set -euo pipefail

WORK="${1:-$(mktemp -d /tmp/midas-chaos-smoke.XXXXXX)}"
MIDASD="${MIDASD:-$WORK/midasd}"
MIDASLOAD="${MIDASLOAD:-$WORK/midasload}"
BASE_PORT="${BASE_PORT:-9111}"
FED=paper
BOOTSTRAP=12
EVENTS=16
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do kill -KILL "$pid" 2> /dev/null || true; done
}
trap cleanup EXIT

log() { echo "[chaos-smoke] $*"; }

[ -x "$MIDASD" ] || go build -o "$MIDASD" ./cmd/midasd
[ -x "$MIDASLOAD" ] || go build -o "$MIDASLOAD" ./cmd/midasload

# --- membership -------------------------------------------------------
peers=""
addrs=""
for i in 1 2; do
  port=$((BASE_PORT + i - 1))
  peers="${peers:+$peers,}n$i=http://127.0.0.1:$port"
  addrs="${addrs:+$addrs,}http://127.0.0.1:$port"
done

cat > "$WORK/federations.json" <<EOF
{"federations": [
  {"name": "$FED", "sf": 0.05, "bootstrap": $BOOTSTRAP, "node_choices": [1, 2],
   "queries": ["Q12"], "chaos": "outages", "chaos_seed": 7}
]}
EOF

# --- boot -------------------------------------------------------------
for i in 1 2; do
  port=$((BASE_PORT + i - 1))
  "$MIDASD" -addr "127.0.0.1:$port" -config "$WORK/federations.json" \
    -data-dir "$WORK/n$i" -node-id "n$i" -cluster-peers "$peers" \
    -cluster-replicate -cluster-sync-interval 200ms \
    > "$WORK/n$i.log" 2>&1 &
  PIDS+=($!)
done
for i in 1 2; do
  port=$((BASE_PORT + i - 1))
  for _ in $(seq 1 120); do
    curl -sf "http://127.0.0.1:$port/readyz" > /dev/null && break
    kill -0 "${PIDS[$((i - 1))]}" 2> /dev/null || { log "n$i died during startup"; cat "$WORK/n$i.log"; exit 1; }
    sleep 1
  done
  curl -sf "http://127.0.0.1:$port/readyz" > /dev/null || { log "n$i never became ready"; exit 1; }
done
log "two nodes up: $peers"

table() { curl -sf "http://127.0.0.1:$BASE_PORT/v1/cluster" 2> /dev/null \
  || curl -sf "http://127.0.0.1:$((BASE_PORT + 1))/v1/cluster"; }
owner_of() { table | jq -r ".placements[\"$1\"].owner"; }
standby_of() { table | jq -r ".placements[\"$1\"].standby"; }
addr_of() { table | jq -r ".members[] | select(.id == \"$1\") | .addr"; }
hist_len() { # hist_len <addr> <federation>
  curl -sf "$1/v1/history/Q12?federation=$2&limit=0" | jq .len
}

# --- record + replay a seeded schedule against the cluster ------------
# -record writes the CRC-framed trace and fires it; the same trace file
# replays again after the takeover, so both runs carry the identical
# byte-exact schedule.
"$MIDASLOAD" -addr "$addrs" -federation "$FED" \
  -arrival bursty -rate 40 -events $EVENTS -seed 9 -speed 20 \
  -record "$WORK/full.trace"
log "recorded and replayed $EVENTS-event trace (all acked)"

# Let the 200ms standby sync arm; afterwards every ack is synchronous.
sleep 1
owner="$(owner_of "$FED")"
before="$(hist_len "$(addr_of "$owner")" "$FED")"
want=$((BOOTSTRAP + EVENTS))
if [ "$before" != "$want" ]; then
  log "FAIL: owner history $before after full replay, want $want"
  exit 1
fi
log "$FED: $before acked observations on $owner"

# --- SIGKILL the owner mid-run ----------------------------------------
vidx="${owner#n}"
log "SIGKILL $owner (owner of $FED) under replay load"
kill -KILL "${PIDS[$((vidx - 1))]}"
wait "${PIDS[$((vidx - 1))]}" 2> /dev/null || true

sb="$(standby_of "$FED")"
[ "$sb" != "$owner" ] && [ -n "$sb" ] || { log "no surviving standby"; exit 1; }
log "takeover: $FED -> $sb"
curl -sf -X POST "$(addr_of "$sb")/v1/admin/takeover?federation=$FED" | jq -c .

# --- zero acked-write loss, then the same trace replays on the survivor
after="$(hist_len "$(addr_of "$sb")" "$FED")"
if [ "$after" != "$before" ]; then
  log "FAIL: $FED lost acked writes across the kill: $before -> $after"
  exit 1
fi
log "$FED: $after observations intact on $sb"

"$MIDASLOAD" -addr "$addrs" -federation "$FED" -replay "$WORK/full.trace" -speed 20
final="$(hist_len "$(addr_of "$sb")" "$FED")"
want=$((BOOTSTRAP + 2 * EVENTS))
if [ "$final" != "$want" ]; then
  log "FAIL: post-takeover replay acked $final observations, want $want"
  exit 1
fi

log "PASS: owner SIGKILL under chaosed replay survived with zero acked-write loss"
