package midas

import (
	"bytes"
	"context"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/histstore"
	"repro/internal/ires"
	"repro/internal/server"
	"repro/internal/tpch"
)

// ---------------------------------------------------------------------------
// Serving hot path: one submission end to end through the server's
// pooled decode → admission → select → execute → record → encode
// pipeline. BenchmarkServeHotPath is benchgate-tracked for both ns/op
// and allocs/op (the pools hold the steady state at single-digit
// allocations per request); the ServeDurable family measures the same
// path against a real WAL under the three durability settings.

// buildServeScheduler assembles a full paper-scale scheduler (default
// topology, calibrated scaled executor, DREAM model) with an optional
// durable store, bootstrapped so serving starts warm.
func buildServeScheduler(b *testing.B, store *histstore.Store) *ires.Scheduler {
	b.Helper()
	fed, err := federation.DefaultTopology(1)
	if err != nil {
		b.Fatal(err)
	}
	cal, err := federation.Calibrate(fed, 0.004, 1)
	if err != nil {
		b.Fatal(err)
	}
	exec, err := federation.NewScaledExecutor(fed, cal, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	model, err := ires.NewDREAMModel(core.Config{MMax: 3 * (federation.FeatureDim + 2)})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ires.SchedulerConfig{
		NodeChoices: []int{1, 2, 4},
		Seed:        1,
	}
	if store != nil {
		// Assigned only when non-nil: a typed-nil *Store in the
		// HistoryStore interface would dodge the scheduler's nil check.
		cfg.Store = store
	}
	sched, err := ires.NewSchedulerWithConfig(fed, exec, model, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sched.Bootstrap(tpch.QueryQ12, 30); err != nil {
		b.Fatal(err)
	}
	return sched
}

// fixedSweepSched pins PlanSweep to a precomputed sweep while selection,
// execution and history recording stay real. This models the coalesced
// steady state — under load most requests join an in-flight sweep
// rather than leading one — so the benchmark isolates the per-request
// serving cost the pools are designed to flatten.
type fixedSweepSched struct {
	*ires.Scheduler
	sweep *ires.Sweep
}

func (f *fixedSweepSched) PlanSweep(ctx context.Context, q tpch.QueryID) (*ires.Sweep, error) {
	return f.sweep, nil
}

// newServeBench wires a one-tenant server around sched.
func newServeBench(b *testing.B, sched server.QueryScheduler) *server.Server {
	b.Helper()
	srv, err := server.NewWithSchedulers(server.Config{
		// Negative disables the per-request and per-sweep deadlines:
		// the benchmark measures the serving pipeline, not context
		// machinery.
		RequestTimeout: -1,
		SweepTimeout:   -1,
	}, map[string]server.QueryScheduler{"bench": sched}, []tpch.QueryID{tpch.QueryQ12})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

var serveBody = []byte(`{"query": "Q12", "weights": [1, 1]}`)

// BenchmarkServeHotPath measures one full submission — decode,
// admission, Pareto selection, simulated execution, history append,
// response encode — with the sweep precomputed (the coalesced steady
// state) and histories in memory. Benchgate-tracked: allocs/op is the
// regression signal for the pooled request path.
func BenchmarkServeHotPath(b *testing.B) {
	sched := buildServeScheduler(b, nil)
	sw, err := sched.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		b.Fatal(err)
	}
	srv := newServeBench(b, &fixedSweepSched{Scheduler: sched, sweep: sw})
	ctx := context.Background()
	var resp bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp.Reset()
		if status := srv.ServeSubmit(ctx, serveBody, &resp); status != http.StatusOK {
			b.Fatalf("submit = %d: %s", status, resp.String())
		}
	}
}

// benchServeDurable is BenchmarkServeHotPath against a real WAL,
// parallelized: concurrent submissions are exactly the regime where
// group commit coalesces fsyncs.
func benchServeDurable(b *testing.B, opts histstore.Options) {
	store, err := histstore.Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	sched := buildServeScheduler(b, store)
	sw, err := sched.PlanSweep(context.Background(), tpch.QueryQ12)
	if err != nil {
		b.Fatal(err)
	}
	srv := newServeBench(b, &fixedSweepSched{Scheduler: sched, sweep: sw})
	ctx := context.Background()
	// Durable submissions block on fsync, not CPU: run many goroutines
	// per core so group commit has concurrency to coalesce even on
	// small machines.
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var resp bytes.Buffer
		for pb.Next() {
			resp.Reset()
			if status := srv.ServeSubmit(ctx, serveBody, &resp); status != http.StatusOK {
				b.Fatalf("submit = %d: %s", status, resp.String())
			}
		}
	})
}

// BenchmarkServeDurable spans the durability ladder docs/performance.md
// tabulates: WAL without fsync, per-append fsync, and group commit
// (per-append durability at coalesced-fsync cost). Deliberately not in
// the benchgate pattern — fsync latency is hardware-dependent noise a
// CI gate must not key on.
func BenchmarkServeDurable(b *testing.B) {
	b.Run("wal", func(b *testing.B) { benchServeDurable(b, histstore.Options{}) })
	b.Run("fsync", func(b *testing.B) { benchServeDurable(b, histstore.Options{Fsync: true}) })
	b.Run("group-commit", func(b *testing.B) { benchServeDurable(b, histstore.Options{GroupCommit: true}) })
}
