package midas_test

import (
	"context"
	"net/http/httptest"
	"testing"

	midas "repro"
)

// TestServeAndLoadFacade drives the exported serving surface end to
// end: build a QueryServer, point the exported load generator at it,
// and require a clean run with coalescing visible in the report.
func TestServeAndLoadFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving stack")
	}
	srv, err := midas.NewQueryServer(midas.ServerConfig{
		Federations: []midas.ServerFederationSpec{{
			Name:        "paper",
			SF:          0.05,
			NodeChoices: []int{1, 2},
			Bootstrap:   12,
			Queries:     []string{"Q12"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := midas.RunLoad(context.Background(), midas.LoadConfig{
		BaseURL:  ts.URL,
		Query:    "Q12",
		Clients:  16,
		Requests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors: %v", rep.Errors, rep.StatusCounts)
	}
	if rep.Requests != 64 {
		t.Fatalf("requests = %d, want 64", rep.Requests)
	}
	if rep.QPS <= 0 || rep.P99MS < rep.P50MS {
		t.Fatalf("implausible report: %+v", rep)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
