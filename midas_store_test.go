package midas_test

import (
	"bytes"
	"testing"

	midas "repro"
)

// TestFacadeDurableHistoryStore drives the exported durability surface:
// open a store, record through a history it owns, recover in a fresh
// store, and import a legacy Save document.
func TestFacadeDurableHistoryStore(t *testing.T) {
	dir := t.TempDir()
	store, err := midas.OpenHistoryStore(dir, midas.HistoryStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := store.OpenHistory("demo", 1, []string{"time_s"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := h.Append(midas.Observation{X: []float64{float64(i)}, Costs: []float64{2 * float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Checkpoint("demo", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 13; i++ { // post-checkpoint appends live in the WAL
		if err := h.Append(midas.Observation{X: []float64{float64(i)}, Costs: []float64{2 * float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := midas.OpenHistoryStore(dir, midas.HistoryStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	h2, err := again.OpenHistory("demo", 1, []string{"time_s"})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 13 {
		t.Fatalf("recovered %d observations, want 13", h2.Len())
	}
	if got := h2.At(12).Costs[0]; got != 26 {
		t.Fatalf("last recovered cost = %v, want 26", got)
	}

	// Legacy one-way import: a History.Save document becomes a shard's
	// base snapshot.
	legacy, err := midas.NewHistory(1, "time_s")
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Append(midas.Observation{X: []float64{1}, Costs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := legacy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := again.ImportLegacy("imported", &buf); err != nil {
		t.Fatal(err)
	}
	h3, err := again.OpenHistory("imported", 1, []string{"time_s"})
	if err != nil {
		t.Fatal(err)
	}
	if h3.Len() != 1 {
		t.Fatalf("imported %d observations, want 1", h3.Len())
	}
}
